"""Run-time metrics: counters, gauges and fixed-bucket histograms.

A :class:`MetricsRegistry` is the one mutable object instrumented code
holds: emission sites ask it for a named counter/gauge/histogram and
update that, so the set of metrics a run produces is discovered at run
time rather than declared up front. Registries from different runner
workers merge with the same Chan-style combination
:class:`~repro.stats.moments.StreamingMoments` uses, so a suite-wide
view is just the fold of its per-job registries — order-independent up
to floating-point roundoff, which is what makes the merge safe no
matter how jobs were spread over processes.

Histograms use *fixed* bucket edges (shared by construction across
workers) so merged bucket counts are exact; only the attached moment
accumulators carry floating-point merge error.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ObservabilityError
from repro.stats.moments import StreamingMoments

#: Log-spaced service/response-time edges: 10 us to 10 s, 24 buckets.
DEFAULT_TIME_EDGES: Tuple[float, ...] = tuple(
    float(e) for e in np.logspace(-5, 1, 25)
)


class Counter:
    """A monotonically increasing integer count."""

    __slots__ = ("value",)

    def __init__(self, value: int = 0) -> None:
        self.value = int(value)

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the count."""
        if amount < 0:
            raise ObservabilityError(
                f"counters only increase; got inc({amount!r})"
            )
        self.value += int(amount)

    def merge(self, other: "Counter") -> "Counter":
        """Counts from two shards: the sum."""
        return Counter(self.value + other.value)

    def as_dict(self) -> int:
        return self.value

    @classmethod
    def from_dict(cls, state: int) -> "Counter":
        return cls(int(state))

    def __repr__(self) -> str:
        return f"Counter({self.value})"


class Gauge:
    """A sampled value: last / min / max / sum / update count.

    Merging two gauges keeps the extrema, the sum and the update count;
    ``last`` is only meaningful when one side never updated (there is no
    cross-shard ordering to decide whose write was "last"), so a merge
    of two updated gauges reports ``last`` as NaN. This keeps the merge
    commutative and associative, which the property tests assert.
    """

    __slots__ = ("last", "minimum", "maximum", "total", "updates")

    def __init__(self) -> None:
        self.last = float("nan")
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self.total = 0.0
        self.updates = 0

    def set(self, value: float) -> None:
        """Record one sample of the gauged quantity."""
        value = float(value)
        self.last = value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        self.total += value
        self.updates += 1

    @property
    def mean(self) -> float:
        """Mean of every sample seen (NaN before the first)."""
        return self.total / self.updates if self.updates else float("nan")

    def merge(self, other: "Gauge") -> "Gauge":
        merged = Gauge()
        merged.updates = self.updates + other.updates
        merged.minimum = min(self.minimum, other.minimum)
        merged.maximum = max(self.maximum, other.maximum)
        merged.total = self.total + other.total
        if self.updates == 0:
            merged.last = other.last
        elif other.updates == 0:
            merged.last = self.last
        else:
            merged.last = float("nan")
        return merged

    def as_dict(self) -> Dict[str, Any]:
        return {
            "last": self.last,
            "min": self.minimum if self.updates else None,
            "max": self.maximum if self.updates else None,
            "sum": self.total,
            "updates": self.updates,
        }

    @classmethod
    def from_dict(cls, state: Dict[str, Any]) -> "Gauge":
        gauge = cls()
        gauge.updates = int(state["updates"])
        gauge.total = float(state["sum"])
        gauge.last = float(state["last"]) if state["last"] is not None else float("nan")
        gauge.minimum = float("inf") if state["min"] is None else float(state["min"])
        gauge.maximum = float("-inf") if state["max"] is None else float(state["max"])
        return gauge

    def __repr__(self) -> str:
        return f"Gauge(last={self.last}, updates={self.updates})"


class FixedHistogram:
    """A histogram over fixed, ascending bucket edges.

    Values land in half-open buckets ``[edges[i], edges[i+1])``; values
    below ``edges[0]`` count as underflow, values at or above
    ``edges[-1]`` as overflow, so every finite observation is counted
    exactly once (the conservation law the property tests check). A
    :class:`StreamingMoments` accumulator rides along for exact mean and
    variance, merged Chan-style.
    """

    def __init__(self, edges: Sequence[float]) -> None:
        edges_arr = np.asarray(edges, dtype=np.float64)
        if edges_arr.ndim != 1 or edges_arr.size < 2:
            raise ObservabilityError(
                f"histogram needs >= 2 edges, got {edges_arr.size}"
            )
        if not np.all(np.isfinite(edges_arr)):
            raise ObservabilityError("histogram edges must be finite")
        if np.any(np.diff(edges_arr) <= 0):
            raise ObservabilityError("histogram edges must be strictly increasing")
        self.edges = edges_arr
        self.edges.setflags(write=False)
        self.counts = np.zeros(edges_arr.size - 1, dtype=np.int64)
        self.underflow = 0
        self.overflow = 0
        self.moments = StreamingMoments()
        self._init_log_bucketing()

    def _init_log_bucketing(self) -> None:
        """Precompute the analytic bucket model for log-spaced edges.

        ``searchsorted`` into even 25 edges is a per-value binary search
        and dominates ``observe_many`` wall time; when the edges are
        (near-)geometric — as :data:`DEFAULT_TIME_EDGES` is — the bucket
        index is just an affine function of ``log(value)``. The model
        only needs to land within one bucket of the truth (checked here
        at every edge); :meth:`observe_many` snaps the candidate to the
        exact ``searchsorted`` answer with two vectorized comparisons
        against the real edges, so the counts are identical either way.
        """
        self._log_origin = 0.0
        self._log_step = 0.0
        self._log_pad: Optional[np.ndarray] = None
        edges = self.edges
        if edges[0] <= 0:
            return
        log_edges = np.log(edges)
        step = (log_edges[-1] - log_edges[0]) / (edges.size - 1)
        if step <= 0:
            return
        positions = (log_edges - log_edges[0]) / step
        if np.abs(positions - np.arange(edges.size)).max() >= 0.25:
            return
        self._log_origin = float(log_edges[0])
        self._log_inv_step = 1.0 / float(step)
        # pad[j] <= value < pad[j+1] characterizes insertion index j.
        self._log_pad = np.concatenate(([-np.inf], edges, [np.inf]))

    def _bucket_indices(self, values_arr: np.ndarray) -> np.ndarray:
        """``searchsorted(edges, values, side="right")``, the fast way
        when the log-spaced model applies."""
        pad = self._log_pad
        if pad is None:
            return np.searchsorted(self.edges, values_arr, side="right")
        # Non-positive values can't go through log; clamping them to a
        # value far below edges[0] sends them to the underflow side, and
        # the exact comparisons below only ever see the original values.
        # Everything runs in-place on one scratch array: this path exists
        # to be cheap, and the temporaries were half its cost.
        scratch = np.maximum(values_arr, self.edges[0] * 1e-20)
        np.log(scratch, out=scratch)
        scratch -= self._log_origin
        scratch *= self._log_inv_step
        np.clip(scratch, -1.0, self.edges.size - 1.0, out=scratch)
        # int64 cast truncates toward zero rather than flooring; the only
        # region where that differs, (-1, 0), still lands within one
        # bucket of the truth, which the snap below corrects anyway.
        indices = scratch.astype(np.int64)
        indices += 1
        # The model is within +-1 of the truth: one snap each direction.
        indices += values_arr >= pad[indices + 1]
        indices -= values_arr < pad[indices]
        return indices

    @property
    def n(self) -> int:
        """Total observations, including under/overflow."""
        return int(self.counts.sum()) + self.underflow + self.overflow

    def observe(self, value: float) -> None:
        """Fold one observation."""
        self.observe_many(np.asarray([value], dtype=np.float64))

    def observe_many(self, values: Sequence[float]) -> None:
        """Fold a batch of observations in a few vectorized passes."""
        values_arr = np.asarray(values, dtype=np.float64)
        if values_arr.size == 0:
            return
        # min/max propagate NaN and retain inf, so two reductions check
        # finiteness of the whole batch (cheaper than isfinite().all()).
        if not (np.isfinite(values_arr.min()) and np.isfinite(values_arr.max())):
            raise ObservabilityError("histogram observations must be finite")
        # Insertion indices land in [0, n_edges]: 0 is underflow,
        # n_edges is overflow, and everything in between maps to bucket
        # index-1 — one bincount classifies all three at once.
        indices = self._bucket_indices(values_arr)
        binned = np.bincount(indices, minlength=self.edges.size + 1)
        self.underflow += int(binned[0])
        self.overflow += int(binned[self.edges.size])
        self.counts += binned[1:self.edges.size]
        self.moments.add_many(values_arr)

    def approx_quantile(self, q: float) -> float:
        """Bucket-interpolated quantile over the in-range counts
        (NaN when everything landed outside the edges)."""
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(f"quantile must be in [0, 1], got {q!r}")
        total = int(self.counts.sum())
        if total == 0:
            return float("nan")
        cumulative = np.cumsum(self.counts)
        target = q * total
        bucket = int(np.searchsorted(cumulative, target, side="left"))
        bucket = min(bucket, self.counts.size - 1)
        before = int(cumulative[bucket - 1]) if bucket else 0
        inside = int(self.counts[bucket])
        fraction = (target - before) / inside if inside else 0.0
        lo, hi = self.edges[bucket], self.edges[bucket + 1]
        return float(lo + fraction * (hi - lo))

    def merge(self, other: "FixedHistogram") -> "FixedHistogram":
        if not np.array_equal(self.edges, other.edges):
            raise ObservabilityError(
                "cannot merge histograms with different bucket edges"
            )
        merged = FixedHistogram(self.edges)
        merged.counts = self.counts + other.counts
        merged.underflow = self.underflow + other.underflow
        merged.overflow = self.overflow + other.overflow
        merged.moments = self.moments.merge(other.moments)
        return merged

    def as_dict(self) -> Dict[str, Any]:
        return {
            "edges": [float(e) for e in self.edges],
            "counts": [int(c) for c in self.counts],
            "underflow": self.underflow,
            "overflow": self.overflow,
            "moments": self.moments.state_dict(),
        }

    @classmethod
    def from_dict(cls, state: Dict[str, Any]) -> "FixedHistogram":
        hist = cls(state["edges"])
        hist.counts = np.asarray(state["counts"], dtype=np.int64)
        hist.underflow = int(state["underflow"])
        hist.overflow = int(state["overflow"])
        hist.moments = StreamingMoments.from_state_dict(state["moments"])
        return hist

    def __repr__(self) -> str:
        return (
            f"FixedHistogram(buckets={self.counts.size}, n={self.n}, "
            f"mean={self.moments.mean:.6g})"
        )


class MetricsRegistry:
    """Named metrics, one flat namespace, get-or-create access.

    Asking for an existing name with a different metric kind (or a
    histogram with different edges) is an error — silently returning a
    mismatched object would corrupt merges.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, FixedHistogram] = {}

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def _check_kind(self, name: str, want: Dict[str, Any]) -> None:
        for kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if table is not want and name in table:
                raise ObservabilityError(
                    f"metric {name!r} already registered as a {kind}"
                )

    def counter(self, name: str) -> Counter:
        """The named counter, created on first use."""
        self._check_kind(name, self._counters)
        if name not in self._counters:
            self._counters[name] = Counter()
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        """The named gauge, created on first use."""
        self._check_kind(name, self._gauges)
        if name not in self._gauges:
            self._gauges[name] = Gauge()
        return self._gauges[name]

    def histogram(
        self, name: str, edges: Optional[Sequence[float]] = None
    ) -> FixedHistogram:
        """The named histogram, created on first use.

        ``edges`` defaults to :data:`DEFAULT_TIME_EDGES`; asking for an
        existing histogram with different edges is rejected.
        """
        self._check_kind(name, self._histograms)
        existing = self._histograms.get(name)
        if existing is not None:
            if edges is not None and not np.array_equal(
                existing.edges, np.asarray(edges, dtype=np.float64)
            ):
                raise ObservabilityError(
                    f"histogram {name!r} already registered with different edges"
                )
            return existing
        hist = FixedHistogram(DEFAULT_TIME_EDGES if edges is None else edges)
        self._histograms[name] = hist
        return hist

    @property
    def counters(self) -> Dict[str, Counter]:
        """Read-only view of the counters by name."""
        return dict(self._counters)

    @property
    def gauges(self) -> Dict[str, Gauge]:
        """Read-only view of the gauges by name."""
        return dict(self._gauges)

    @property
    def histograms(self) -> Dict[str, FixedHistogram]:
        """Read-only view of the histograms by name."""
        return dict(self._histograms)

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # ------------------------------------------------------------------
    # Merge / serialization
    # ------------------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """A new registry equivalent to having observed both shards.

        Same-name metrics must be the same kind (and histograms the same
        edges); disjoint names are carried through unchanged.
        """
        merged = MetricsRegistry()
        for name in set(self._counters) | set(other._counters):
            a = self._counters.get(name, Counter())
            b = other._counters.get(name, Counter())
            for reg in (self, other):
                reg._check_kind(name, reg._counters)
            merged._counters[name] = a.merge(b)
        for name in set(self._gauges) | set(other._gauges):
            a_g = self._gauges.get(name, Gauge())
            b_g = other._gauges.get(name, Gauge())
            for reg in (self, other):
                reg._check_kind(name, reg._gauges)
            merged._gauges[name] = a_g.merge(b_g)
        for name in set(self._histograms) | set(other._histograms):
            mine = self._histograms.get(name)
            theirs = other._histograms.get(name)
            for reg in (self, other):
                reg._check_kind(name, reg._histograms)
            if mine is None:
                assert theirs is not None
                merged._histograms[name] = theirs.merge(FixedHistogram(theirs.edges))
            elif theirs is None:
                merged._histograms[name] = mine.merge(FixedHistogram(mine.edges))
            else:
                merged._histograms[name] = mine.merge(theirs)
        return merged

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly snapshot, sorted by name for stable output."""
        return {
            "counters": {k: v.as_dict() for k, v in sorted(self._counters.items())},
            "gauges": {k: v.as_dict() for k, v in sorted(self._gauges.items())},
            "histograms": {
                k: v.as_dict() for k, v in sorted(self._histograms.items())
            },
        }

    @classmethod
    def from_dict(cls, state: Dict[str, Any]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`as_dict` output."""
        registry = cls()
        for name, value in state.get("counters", {}).items():
            registry._counters[name] = Counter.from_dict(value)
        for name, value in state.get("gauges", {}).items():
            registry._gauges[name] = Gauge.from_dict(value)
        for name, value in state.get("histograms", {}).items():
            registry._histograms[name] = FixedHistogram.from_dict(value)
        return registry

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, histograms={len(self._histograms)})"
        )
