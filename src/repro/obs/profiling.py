"""Phase-level wall/CPU profiling for experiment jobs.

:class:`ProfileScope` is a tiny, dependency-free accumulator the
:class:`~repro.core.runner.ExperimentRunner` wraps around each job's
phases (``synthesize``, ``simulate``, ``describe``). Wall time comes
from :func:`time.perf_counter`, CPU time from :func:`time.process_time`;
the gap between them is time spent off-CPU (I/O, scheduler), which is
exactly the signal the ROADMAP's perf work needs before optimizing.

Phases nest: entering ``simulate`` inside ``job`` records the inner span
under ``"job/simulate"``, so breakdowns keep their call structure
without any global state.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.errors import ObservabilityError


@dataclass
class PhaseTiming:
    """Accumulated timings of one (possibly re-entered) phase."""

    calls: int = 0
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "calls": self.calls,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
        }


class ProfileScope:
    """Accumulates per-phase wall and CPU time.

    >>> scope = ProfileScope()
    >>> with scope.phase("simulate"):
    ...     pass
    >>> scope.phases["simulate"].calls
    1
    """

    def __init__(self) -> None:
        self.phases: Dict[str, PhaseTiming] = {}
        self._stack: List[str] = []

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time one phase; nested phases record as ``outer/inner``."""
        if not name or "/" in name:
            raise ObservabilityError(
                f"phase name must be non-empty and '/'-free, got {name!r}"
            )
        self._stack.append(name)
        key = "/".join(self._stack)
        wall_start = time.perf_counter()
        cpu_start = time.process_time()
        try:
            yield
        finally:
            wall = time.perf_counter() - wall_start
            cpu = time.process_time() - cpu_start
            timing = self.phases.setdefault(key, PhaseTiming())
            timing.calls += 1
            timing.wall_seconds += wall
            timing.cpu_seconds += cpu
            self._stack.pop()

    def as_dicts(self) -> Tuple[Dict[str, float], Dict[str, float]]:
        """``(phase_wall, phase_cpu)`` as plain ``name -> seconds`` maps."""
        wall = {name: t.wall_seconds for name, t in sorted(self.phases.items())}
        cpu = {name: t.cpu_seconds for name, t in sorted(self.phases.items())}
        return wall, cpu

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """Full breakdown: ``name -> {calls, wall_seconds, cpu_seconds}``."""
        return {name: t.as_dict() for name, t in sorted(self.phases.items())}

    def __repr__(self) -> str:
        return f"ProfileScope(phases={sorted(self.phases)})"
