"""Typed event traces: what happened inside a run, and when.

:class:`EventTrace` is a bounded ring-buffer recorder the instrumented
subsystems emit into: the replay engines record every served request and
every queue-depth change, the drive records seeks, the fault model
records retries and reassignments, and the scrub planner records each
verified region. Events are plain ``(time, kind, source, data)`` rows,
dumpable to JSONL and loadable back, so a *simulated* run becomes a
trace in its own right — :func:`request_trace_from_events` and
:func:`timeline_from_events` rebuild the
:class:`~repro.traces.millisecond.RequestTrace` /
:class:`~repro.disk.timeline.BusyIdleTimeline` views that
:mod:`repro.core.timescales` analyzes, closing the loop the paper drew
between observation and analysis.

Within one run, each emitting source appends in its own clock order, so
per-source event streams are time-ordered (a property test asserts
this); the global buffer interleaves sources in emission order.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.errors import ObservabilityError

#: Default ring capacity: enough for every event of a mid-size run.
DEFAULT_EVENT_CAPACITY = 1 << 16


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event.

    Attributes
    ----------
    time:
        Simulation-clock seconds at which the event happened.
    kind:
        The event type (``'serve'``, ``'queue_depth'``, ``'seek_start'``,
        ``'seek_end'``, ``'retry'``, ``'reassignment'``, ``'slow_region'``,
        ``'scrub_chunk'``, ``'write_absorbed'``, ``'cache_hit'``,
        ``'run_end'``, ...).
    source:
        The emitting subsystem (``'sim'``, ``'queue'``, ``'drive'``,
        ``'faults'``, ``'cache'``, ``'scrub'``).
    data:
        Kind-specific payload fields.
    """

    time: float
    kind: str
    source: str
    data: Mapping[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "time": self.time,
            "kind": self.kind,
            "source": self.source,
            "data": dict(self.data),
        }

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "TraceEvent":
        try:
            return cls(
                time=float(record["time"]),
                kind=str(record["kind"]),
                source=str(record["source"]),
                data=dict(record.get("data", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ObservabilityError(f"malformed event record: {exc}") from exc


class EventTrace:
    """A bounded recorder: keeps the newest ``capacity`` events.

    The ring never blocks an emitting hot path — when full, the oldest
    events are dropped and counted in :attr:`n_dropped`, so the recorder
    degrades by forgetting history rather than by slowing the run.
    """

    def __init__(self, capacity: int = DEFAULT_EVENT_CAPACITY) -> None:
        if capacity < 1:
            raise ObservabilityError(f"capacity must be >= 1, got {capacity!r}")
        self.capacity = int(capacity)
        self._ring: deque = deque(maxlen=self.capacity)
        self._emitted = 0

    def emit(self, kind: str, time: float, source: str, **data: Any) -> None:
        """Record one event (oldest events fall off a full ring)."""
        self._ring.append(TraceEvent(float(time), kind, source, data))
        self._emitted += 1

    @property
    def n_emitted(self) -> int:
        """Events ever emitted, including any since dropped."""
        return self._emitted

    @property
    def n_dropped(self) -> int:
        """Events the ring has forgotten (emitted minus retained)."""
        return self._emitted - len(self._ring)

    def events(self) -> Tuple[TraceEvent, ...]:
        """The retained events in emission order."""
        return tuple(self._ring)

    def clear(self) -> None:
        """Drop every retained event and reset the counters."""
        self._ring.clear()
        self._emitted = 0

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self):
        return iter(self._ring)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def dump_jsonl(self, path: str) -> int:
        """Write the retained events as one JSON object per line.

        Returns the number of events written.
        """
        with open(path, "w") as fh:
            for event in self._ring:
                fh.write(json.dumps(event.as_dict()) + "\n")
        return len(self._ring)

    def __repr__(self) -> str:
        return (
            f"EventTrace(retained={len(self._ring)}, emitted={self._emitted}, "
            f"capacity={self.capacity})"
        )


def load_events_jsonl(path: str) -> List[TraceEvent]:
    """Read an event trace dumped by :meth:`EventTrace.dump_jsonl`.

    Malformed lines raise :class:`~repro.errors.ObservabilityError` with
    the offending ``path:lineno`` rather than silently skipping.
    """
    events: List[TraceEvent] = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ObservabilityError(
                    f"{path}:{lineno}: invalid JSON: {exc}"
                ) from exc
            events.append(TraceEvent.from_dict(record))
    return events


EventLike = Union[TraceEvent, Mapping[str, Any]]


def _as_event(event: EventLike) -> TraceEvent:
    if isinstance(event, TraceEvent):
        return event
    return TraceEvent.from_dict(event)


def serve_events(events: Iterable[EventLike]) -> List[TraceEvent]:
    """The ``serve`` events of a stream, in original request order.

    Serve events carry the request's trace index, so re-sorting by it
    recovers arrival order regardless of the discipline that reordered
    service.
    """
    picked = [e for e in map(_as_event, events) if e.kind == "serve"]
    picked.sort(key=lambda e: e.data.get("index", 0))
    return picked


def request_trace_from_events(
    events: Iterable[EventLike],
    label: str = "events",
    span: Optional[float] = None,
):
    """Rebuild the replayed :class:`~repro.traces.millisecond.RequestTrace`
    from a run's ``serve`` events.

    ``span`` defaults to the ``run_end`` event's time when the stream
    has one (the simulator emits it at the observation-window end), else
    to the last arrival. The result feeds directly into
    :func:`repro.core.timescales.run_millisecond_study` — a simulated
    run re-analyzed at every time scale.
    """
    from repro.traces.millisecond import RequestTrace

    materialized = [_as_event(e) for e in events]
    served = serve_events(materialized)
    if span is None:
        for event in materialized:
            if event.kind == "run_end":
                span = float(event.time)
                break
    if not served:
        raise ObservabilityError("event stream holds no 'serve' events")
    return RequestTrace(
        times=[e.data["arrival"] for e in served],
        lbas=[e.data["lba"] for e in served],
        nsectors=[e.data["nsectors"] for e in served],
        is_write=[e.data["write"] for e in served],
        span=span,
        label=label,
    )


def timeline_from_events(events: Iterable[EventLike], span: Optional[float] = None):
    """Rebuild the busy/idle timeline from a run's ``serve`` events.

    Each serve event contributes the busy interval
    ``[time, time + service)``; ``span`` defaults to the ``run_end``
    event's time, else the last completion.
    """
    from repro.disk.timeline import BusyIdleTimeline

    materialized = [_as_event(e) for e in events]
    served = serve_events(materialized)
    if span is None:
        for event in materialized:
            if event.kind == "run_end":
                span = float(event.time)
                break
    if not served:
        raise ObservabilityError("event stream holds no 'serve' events")
    intervals = [(e.time, e.time + float(e.data["service"])) for e in served]
    last_finish = max(end for _, end in intervals)
    return BusyIdleTimeline(
        intervals, span=last_finish if span is None else max(span, last_finish)
    )
