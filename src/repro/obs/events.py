"""Typed event traces: what happened inside a run, and when.

:class:`EventTrace` is a bounded ring-buffer recorder the instrumented
subsystems emit into: the replay engines record every served request and
every queue-depth change, the drive records seeks, the fault model
records retries and reassignments, and the scrub planner records each
verified region. Events are plain ``(time, kind, source, data)`` rows,
dumpable to JSONL and loadable back, so a *simulated* run becomes a
trace in its own right — :func:`request_trace_from_events` and
:func:`timeline_from_events` rebuild the
:class:`~repro.traces.millisecond.RequestTrace` /
:class:`~repro.disk.timeline.BusyIdleTimeline` views that
:mod:`repro.core.timescales` analyzes, closing the loop the paper drew
between observation and analysis.

Within one run, each emitting source appends in its own clock order, so
per-source event streams are time-ordered (a property test asserts
this); the global buffer interleaves sources in emission order.

Storage is columnar: the ring keeps events as a sequence of *blocks* —
either a list of already-built :class:`TraceEvent` objects (scalar
:meth:`EventTrace.emit`) or a batch of parallel numpy arrays
(:meth:`EventTrace.emit_columns`, the replay engines' bulk path).
:class:`TraceEvent` objects for a column block are rendered only when the
trace is read (``events()``, iteration, ``dump_jsonl``), so recording a
million-request run costs a few array appends instead of a million
object constructions. Capacity accounting is exact: blocks are trimmed
event by event from the oldest end, so ``n_emitted`` / ``n_dropped`` and
the retained window match the old per-object ring exactly.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.errors import ObservabilityError

#: Default ring capacity: enough for every event of a mid-size run.
DEFAULT_EVENT_CAPACITY = 1 << 16


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event.

    Attributes
    ----------
    time:
        Simulation-clock seconds at which the event happened.
    kind:
        The event type (``'serve'``, ``'queue_depth'``, ``'seek_start'``,
        ``'seek_end'``, ``'retry'``, ``'reassignment'``, ``'slow_region'``,
        ``'scrub_chunk'``, ``'write_absorbed'``, ``'cache_hit'``,
        ``'run_end'``, ...).
    source:
        The emitting subsystem (``'sim'``, ``'queue'``, ``'drive'``,
        ``'faults'``, ``'cache'``, ``'scrub'``).
    data:
        Kind-specific payload fields.
    """

    time: float
    kind: str
    source: str
    data: Mapping[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "time": self.time,
            "kind": self.kind,
            "source": self.source,
            "data": dict(self.data),
        }

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "TraceEvent":
        try:
            return cls(
                time=float(record["time"]),
                kind=str(record["kind"]),
                source=str(record["source"]),
                data=dict(record.get("data", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ObservabilityError(f"malformed event record: {exc}") from exc


class _ScalarBlock:
    """A run of individually emitted events; ``start`` marks the dropped
    prefix (compacted away once it dominates the list)."""

    __slots__ = ("items", "start")

    def __init__(self) -> None:
        self.items: List[TraceEvent] = []
        self.start = 0

    def __len__(self) -> int:
        return len(self.items) - self.start

    def drop(self, count: int) -> None:
        self.start += count
        if self.start > 1024 and self.start * 2 >= len(self.items):
            del self.items[: self.start]
            self.start = 0

    def render(self) -> List[TraceEvent]:
        return self.items[self.start:] if self.start else self.items


class _ColumnBlock:
    """One ``emit_columns`` batch: a shared kind/source, a time array and
    parallel payload arrays. :class:`TraceEvent` objects are built only
    in :meth:`render` — ``tolist()`` yields plain Python scalars, so the
    rendered events equal (and JSON-serialize identically to) the ones
    the scalar path would have built."""

    __slots__ = ("kind", "source", "times", "columns", "start")

    def __init__(
        self,
        kind: str,
        source: str,
        times: np.ndarray,
        columns: Dict[str, np.ndarray],
    ) -> None:
        self.kind = kind
        self.source = source
        self.times = times
        self.columns = columns
        self.start = 0

    def __len__(self) -> int:
        return self.times.size - self.start

    def drop(self, count: int) -> None:
        self.start += count

    def render(self) -> List[TraceEvent]:
        start = self.start
        times = (self.times[start:] if start else self.times).tolist()
        payload = [
            (key, (values[start:] if start else values).tolist())
            for key, values in self.columns.items()
        ]
        kind = self.kind
        source = self.source
        return [
            TraceEvent(
                time, kind, source, {key: values[i] for key, values in payload}
            )
            for i, time in enumerate(times)
        ]


class EventTrace:
    """A bounded recorder: keeps the newest ``capacity`` events.

    The ring never blocks an emitting hot path — when full, the oldest
    events are dropped and counted in :attr:`n_dropped`, so the recorder
    degrades by forgetting history rather than by slowing the run.
    """

    def __init__(self, capacity: int = DEFAULT_EVENT_CAPACITY) -> None:
        if capacity < 1:
            raise ObservabilityError(f"capacity must be >= 1, got {capacity!r}")
        self.capacity = int(capacity)
        self._blocks: deque = deque()
        self._retained = 0
        self._emitted = 0

    def emit(self, kind: str, time: float, source: str, **data: Any) -> None:
        """Record one event (oldest events fall off a full ring)."""
        blocks = self._blocks
        if blocks and type(blocks[-1]) is _ScalarBlock:
            tail = blocks[-1]
        else:
            tail = _ScalarBlock()
            blocks.append(tail)
        tail.items.append(TraceEvent(float(time), kind, source, data))
        self._emitted += 1
        self._retained += 1
        if self._retained > self.capacity:
            self._trim()

    def emit_columns(
        self, kind: str, source: str, times: Any, **columns: Any
    ) -> None:
        """Record a batch of same-kind events from parallel arrays.

        ``times`` gives each event's clock; every keyword argument is a
        same-length array whose element ``i`` becomes payload field
        ``key`` of event ``i`` (keyword order is preserved in the
        payload). Equivalent to ``emit`` in a loop, at array cost.
        """
        times = np.asarray(times, dtype=np.float64)
        n = times.size
        arrays: Dict[str, np.ndarray] = {}
        for key, values in columns.items():
            arr = np.asarray(values)
            if arr.size != n:
                raise ObservabilityError(
                    f"column {key!r} has {arr.size} values for {n} times"
                )
            arrays[key] = arr
        if n == 0:
            return
        self._blocks.append(_ColumnBlock(kind, source, times, arrays))
        self._emitted += n
        self._retained += n
        if self._retained > self.capacity:
            self._trim()

    def _trim(self) -> None:
        excess = self._retained - self.capacity
        blocks = self._blocks
        while excess > 0:
            block = blocks[0]
            available = len(block)
            if available <= excess:
                blocks.popleft()
                excess -= available
                self._retained -= available
            else:
                block.drop(excess)
                self._retained -= excess
                excess = 0

    @property
    def n_emitted(self) -> int:
        """Events ever emitted, including any since dropped."""
        return self._emitted

    @property
    def n_dropped(self) -> int:
        """Events the ring has forgotten (emitted minus retained)."""
        return self._emitted - self._retained

    def events(self) -> Tuple[TraceEvent, ...]:
        """The retained events in emission order (column blocks are
        rendered to :class:`TraceEvent` objects here, on read)."""
        return tuple(self)

    def clear(self) -> None:
        """Drop every retained event and reset the counters."""
        self._blocks.clear()
        self._retained = 0
        self._emitted = 0

    def __len__(self) -> int:
        return self._retained

    def __iter__(self) -> Iterator[TraceEvent]:
        for block in self._blocks:
            yield from block.render()

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def dump_jsonl(self, path: str) -> int:
        """Write the retained events as one JSON object per line.

        Returns the number of events written.
        """
        with open(path, "w") as fh:
            for event in self:
                fh.write(json.dumps(event.as_dict()) + "\n")
        return self._retained

    def __repr__(self) -> str:
        return (
            f"EventTrace(retained={self._retained}, emitted={self._emitted}, "
            f"capacity={self.capacity})"
        )


def load_events_jsonl(path: str) -> List[TraceEvent]:
    """Read an event trace dumped by :meth:`EventTrace.dump_jsonl`.

    Malformed lines raise :class:`~repro.errors.ObservabilityError` with
    the offending ``path:lineno`` rather than silently skipping.
    """
    events: List[TraceEvent] = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ObservabilityError(
                    f"{path}:{lineno}: invalid JSON: {exc}"
                ) from exc
            events.append(TraceEvent.from_dict(record))
    return events


EventLike = Union[TraceEvent, Mapping[str, Any]]


def _as_event(event: EventLike) -> TraceEvent:
    if isinstance(event, TraceEvent):
        return event
    return TraceEvent.from_dict(event)


def serve_events(events: Iterable[EventLike]) -> List[TraceEvent]:
    """The ``serve`` events of a stream, in original request order.

    Serve events carry the request's trace index, so re-sorting by it
    recovers arrival order regardless of the discipline that reordered
    service.
    """
    picked = [e for e in map(_as_event, events) if e.kind == "serve"]
    picked.sort(key=lambda e: e.data.get("index", 0))
    return picked


def request_trace_from_events(
    events: Iterable[EventLike],
    label: str = "events",
    span: Optional[float] = None,
):
    """Rebuild the replayed :class:`~repro.traces.millisecond.RequestTrace`
    from a run's ``serve`` events.

    ``span`` defaults to the ``run_end`` event's time when the stream
    has one (the simulator emits it at the observation-window end), else
    to the last arrival. The result feeds directly into
    :func:`repro.core.timescales.run_millisecond_study` — a simulated
    run re-analyzed at every time scale.
    """
    from repro.traces.millisecond import RequestTrace

    materialized = [_as_event(e) for e in events]
    served = serve_events(materialized)
    if span is None:
        for event in materialized:
            if event.kind == "run_end":
                span = float(event.time)
                break
    if not served:
        raise ObservabilityError("event stream holds no 'serve' events")
    return RequestTrace(
        times=[e.data["arrival"] for e in served],
        lbas=[e.data["lba"] for e in served],
        nsectors=[e.data["nsectors"] for e in served],
        is_write=[e.data["write"] for e in served],
        span=span,
        label=label,
    )


def timeline_from_events(events: Iterable[EventLike], span: Optional[float] = None):
    """Rebuild the busy/idle timeline from a run's ``serve`` events.

    Each serve event contributes the busy interval
    ``[time, time + service)``; ``span`` defaults to the ``run_end``
    event's time, else the last completion.
    """
    from repro.disk.timeline import BusyIdleTimeline

    materialized = [_as_event(e) for e in events]
    served = serve_events(materialized)
    if span is None:
        for event in materialized:
            if event.kind == "run_end":
                span = float(event.time)
                break
    if not served:
        raise ObservabilityError("event stream holds no 'serve' events")
    intervals = [(e.time, e.time + float(e.data["service"])) for e in served]
    last_finish = max(end for _, end in intervals)
    return BusyIdleTimeline(
        intervals, span=last_finish if span is None else max(span, last_finish)
    )
