"""Observability for the repro simulator: metrics, events, profiling.

The paper's method — study the *same* run at multiple time-scales —
needs the run itself to be observable. This package provides the three
views, all optional and all off by default:

- :class:`MetricsRegistry` (:mod:`repro.obs.metrics`): counters, gauges
  and fixed-bucket histograms, mergeable across runner workers with the
  same Chan-style combine :class:`~repro.stats.moments.StreamingMoments`
  uses.
- :class:`EventTrace` (:mod:`repro.obs.events`): a ring-buffer of typed
  events (serve, seek, queue-depth change, retry, reassignment, scrub
  chunk, ...) dumpable to JSONL and re-analyzable by
  :mod:`repro.core.timescales`.
- :class:`ProfileScope` (:mod:`repro.obs.profiling`): per-phase wall/CPU
  breakdowns the :class:`~repro.core.runner.ExperimentRunner` attaches
  to :class:`~repro.core.runner.SuiteReport`.

:class:`Observer` bundles them behind one handle with three levels:

- ``"off"`` — nothing recorded; the instrumented code must behave
  bit-identically to ``obs=None`` (asserted by tests).
- ``"metrics"`` — registry only; designed for ≤8% overhead on the
  vectorized engines (metrics are filled post-hoc from result arrays).
- ``"trace"`` — registry plus event recording.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import ObservabilityError
from repro.obs.events import (
    DEFAULT_EVENT_CAPACITY,
    EventTrace,
    TraceEvent,
    load_events_jsonl,
    request_trace_from_events,
    serve_events,
    timeline_from_events,
)
from repro.obs.metrics import (
    DEFAULT_TIME_EDGES,
    Counter,
    FixedHistogram,
    Gauge,
    MetricsRegistry,
)
from repro.obs.profiling import PhaseTiming, ProfileScope

OBS_LEVELS = ("off", "metrics", "trace")


class Observer:
    """One handle bundling a run's metrics, events and profiling.

    Instrumented code checks :attr:`enabled` / :attr:`tracing` before
    doing any recording work, so an ``"off"`` observer (or no observer
    at all) costs nothing on the hot paths.
    """

    def __init__(
        self,
        level: str = "metrics",
        event_capacity: int = DEFAULT_EVENT_CAPACITY,
    ) -> None:
        if level not in OBS_LEVELS:
            raise ObservabilityError(
                f"unknown observability level {level!r}; expected one of {OBS_LEVELS}"
            )
        self.level = level
        self.metrics = MetricsRegistry()
        self.events: Optional[EventTrace] = (
            EventTrace(capacity=event_capacity) if level == "trace" else None
        )
        self.profile = ProfileScope()

    @property
    def enabled(self) -> bool:
        """True when metrics (and possibly events) are being recorded."""
        return self.level != "off"

    @property
    def tracing(self) -> bool:
        """True when per-event recording is on."""
        return self.level == "trace" and self.events is not None

    def emit(self, kind: str, time: float, source: str, **data: Any) -> None:
        """Record an event when tracing; a no-op otherwise."""
        if self.events is not None and self.level == "trace":
            self.events.emit(kind, time, source, **data)

    def emit_columns(self, kind: str, source: str, times: Any, **columns: Any) -> None:
        """Record a batch of events from parallel arrays when tracing; a
        no-op otherwise (see :meth:`EventTrace.emit_columns`)."""
        if self.events is not None and self.level == "trace":
            self.events.emit_columns(kind, source, times, **columns)

    def __repr__(self) -> str:
        return f"Observer(level={self.level!r}, metrics={len(self.metrics)})"


__all__ = [
    "Counter",
    "DEFAULT_EVENT_CAPACITY",
    "DEFAULT_TIME_EDGES",
    "EventTrace",
    "FixedHistogram",
    "Gauge",
    "MetricsRegistry",
    "OBS_LEVELS",
    "Observer",
    "PhaseTiming",
    "ProfileScope",
    "TraceEvent",
    "load_events_jsonl",
    "request_trace_from_events",
    "serve_events",
    "timeline_from_events",
]
