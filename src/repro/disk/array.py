"""Disk arrays: striping and mirroring above the single-drive model.

The paper's drives were deployed inside enterprise storage systems —
RAID groups — so the traffic a *single* disk sees is the array
controller's projection of the logical workload. This module implements
that projection for the two canonical layouts:

* :class:`StripedArray` (RAID-0): logical address space striped across
  members in fixed chunks; a request touching several chunks splits into
  per-member sub-requests.
* :class:`MirroredPair` (RAID-1): writes duplicate to both members,
  reads alternate (round-robin).

Splitting a logical trace yields one :class:`~repro.traces.RequestTrace`
per member, each replayable through :class:`~repro.disk.DiskSimulator` —
which is how the cross-drive *imbalance within one system* analyses are
produced (experiment F14).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import DiskModelError
from repro.traces.millisecond import RequestTrace


class StripedArray:
    """RAID-0 striping of a logical address space over ``n_members``.

    Parameters
    ----------
    n_members:
        Number of member drives.
    chunk_sectors:
        Stripe unit in sectors: logical chunk ``c`` lands on member
        ``c % n_members`` at member-local chunk ``c // n_members``.
    member_capacity_sectors:
        Capacity of each member; the logical capacity is
        ``n_members * member_capacity_sectors``.
    """

    def __init__(
        self,
        n_members: int,
        chunk_sectors: int,
        member_capacity_sectors: int,
    ) -> None:
        if n_members < 2:
            raise DiskModelError(f"an array needs >= 2 members, got {n_members!r}")
        if chunk_sectors <= 0:
            raise DiskModelError(f"chunk_sectors must be > 0, got {chunk_sectors!r}")
        if member_capacity_sectors <= 0:
            raise DiskModelError(
                f"member_capacity_sectors must be > 0, got {member_capacity_sectors!r}"
            )
        if member_capacity_sectors % chunk_sectors:
            raise DiskModelError(
                "member capacity must be a whole number of chunks "
                f"({member_capacity_sectors} % {chunk_sectors} != 0)"
            )
        self.n_members = int(n_members)
        self.chunk_sectors = int(chunk_sectors)
        self.member_capacity_sectors = int(member_capacity_sectors)

    @property
    def logical_capacity_sectors(self) -> int:
        """Total addressable sectors of the array."""
        return self.n_members * self.member_capacity_sectors

    def member_of(self, lba: int) -> int:
        """Which member holds logical sector ``lba``."""
        self._check_lba(lba)
        return (lba // self.chunk_sectors) % self.n_members

    def member_lba(self, lba: int) -> int:
        """The member-local sector of logical sector ``lba``."""
        self._check_lba(lba)
        chunk = lba // self.chunk_sectors
        offset = lba % self.chunk_sectors
        return (chunk // self.n_members) * self.chunk_sectors + offset

    def _check_lba(self, lba: int) -> None:
        if lba < 0 or lba >= self.logical_capacity_sectors:
            raise DiskModelError(
                f"logical LBA {lba!r} outside array capacity "
                f"{self.logical_capacity_sectors}"
            )

    def split_trace(self, trace: RequestTrace) -> List[RequestTrace]:
        """Project a logical trace onto the members.

        Each logical request becomes one sub-request per chunk-contiguous
        extent it covers on each member; sub-requests inherit the logical
        arrival time (the controller issues them concurrently). Returns
        ``n_members`` traces sharing the logical clock and span.
        """
        per_member: List[dict] = [
            {"times": [], "lbas": [], "nsectors": [], "is_write": []}
            for _ in range(self.n_members)
        ]
        chunk = self.chunk_sectors
        for i in range(len(trace)):
            time = float(trace.times[i])
            lba = int(trace.lbas[i])
            remaining = int(trace.nsectors[i])
            write = bool(trace.is_write[i])
            if lba + remaining > self.logical_capacity_sectors:
                raise DiskModelError(
                    f"request [{lba}, {lba + remaining}) exceeds array capacity "
                    f"{self.logical_capacity_sectors}"
                )
            while remaining > 0:
                in_chunk = min(remaining, chunk - (lba % chunk))
                member = self.member_of(lba)
                bucket = per_member[member]
                local = self.member_lba(lba)
                # Merge with the previous sub-request when it continues the
                # same member extent at the same instant (a request spanning
                # n_members+ chunks wraps back around).
                if (
                    bucket["times"]
                    and bucket["times"][-1] == time
                    and bucket["is_write"][-1] == write
                    and bucket["lbas"][-1] + bucket["nsectors"][-1] == local
                ):
                    bucket["nsectors"][-1] += in_chunk
                else:
                    bucket["times"].append(time)
                    bucket["lbas"].append(local)
                    bucket["nsectors"].append(in_chunk)
                    bucket["is_write"].append(write)
                lba += in_chunk
                remaining -= in_chunk
        return [
            RequestTrace(
                times=b["times"], lbas=b["lbas"], nsectors=b["nsectors"],
                is_write=b["is_write"], span=trace.span,
                label=f"{trace.label}@member{m}",
            )
            for m, b in enumerate(per_member)
        ]


class MirroredPair:
    """RAID-1: two members holding identical data.

    Writes go to both members; reads alternate round-robin (the common
    load-balancing policy). The address space equals one member's.
    """

    def __init__(self, member_capacity_sectors: int) -> None:
        if member_capacity_sectors <= 0:
            raise DiskModelError(
                f"member_capacity_sectors must be > 0, got {member_capacity_sectors!r}"
            )
        self.member_capacity_sectors = int(member_capacity_sectors)

    @property
    def logical_capacity_sectors(self) -> int:
        """Addressable sectors (one member's worth)."""
        return self.member_capacity_sectors

    def split_trace(self, trace: RequestTrace) -> List[RequestTrace]:
        """Project a logical trace onto the two mirror members."""
        buckets = [
            {"times": [], "lbas": [], "nsectors": [], "is_write": []}
            for _ in range(2)
        ]
        next_read_member = 0
        for i in range(len(trace)):
            lba = int(trace.lbas[i])
            n = int(trace.nsectors[i])
            if lba + n > self.logical_capacity_sectors:
                raise DiskModelError(
                    f"request [{lba}, {lba + n}) exceeds mirror capacity "
                    f"{self.logical_capacity_sectors}"
                )
            time = float(trace.times[i])
            if trace.is_write[i]:
                targets = (0, 1)
            else:
                targets = (next_read_member,)
                next_read_member = 1 - next_read_member
            for member in targets:
                b = buckets[member]
                b["times"].append(time)
                b["lbas"].append(lba)
                b["nsectors"].append(n)
                b["is_write"].append(bool(trace.is_write[i]))
        return [
            RequestTrace(
                times=b["times"], lbas=b["lbas"], nsectors=b["nsectors"],
                is_write=b["is_write"], span=trace.span,
                label=f"{trace.label}@mirror{m}",
            )
            for m, b in enumerate(buckets)
        ]


def member_imbalance(member_traces: List[RequestTrace]) -> float:
    """Byte-traffic imbalance across members: max over mean, >= 1.

    1.0 means perfectly even striping; large values mean one member
    carries a disproportionate share (hot chunks aligned with the
    stripe), the within-system face of cross-drive variability.
    """
    if not member_traces:
        raise DiskModelError("need at least one member trace")
    totals = np.array([float(t.total_bytes) for t in member_traces])
    mean = totals.mean()
    if mean == 0:
        return float("nan")
    return float(totals.max() / mean)
