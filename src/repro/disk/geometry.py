"""Zoned disk geometry: mapping LBAs to cylinders and track densities.

Real drives use zoned bit recording: outer cylinders hold more sectors
per track than inner ones, so both the LBA→cylinder mapping and the media
transfer rate depend on radial position. :class:`DiskGeometry` models a
drive as a small number of zones, each with a constant sectors-per-track,
which captures both effects with O(#zones) lookup state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import DiskModelError


@dataclass(frozen=True)
class Zone:
    """One recording zone: a contiguous cylinder range with constant
    sectors per track.

    Attributes
    ----------
    first_cylinder:
        First cylinder of the zone (inclusive).
    cylinders:
        Number of cylinders in the zone.
    sectors_per_track:
        Sectors on each track of the zone.
    first_lba:
        LBA of the zone's first sector (derived at construction).
    """

    first_cylinder: int
    cylinders: int
    sectors_per_track: int
    first_lba: int

    def __post_init__(self) -> None:
        if self.cylinders <= 0:
            raise DiskModelError(f"zone must span >= 1 cylinder, got {self.cylinders!r}")
        if self.sectors_per_track <= 0:
            raise DiskModelError(
                f"sectors_per_track must be > 0, got {self.sectors_per_track!r}"
            )


class DiskGeometry:
    """Zoned geometry of one drive.

    Parameters
    ----------
    heads:
        Number of recording surfaces (tracks per cylinder).
    zone_cylinders:
        Cylinder count of each zone, outermost first.
    zone_sectors_per_track:
        Sectors per track of each zone, outermost first (non-increasing
        toward the spindle on a real drive, but not enforced).
    """

    def __init__(
        self,
        heads: int,
        zone_cylinders: Sequence[int],
        zone_sectors_per_track: Sequence[int],
    ) -> None:
        if heads <= 0:
            raise DiskModelError(f"heads must be > 0, got {heads!r}")
        if len(zone_cylinders) != len(zone_sectors_per_track):
            raise DiskModelError(
                "zone_cylinders and zone_sectors_per_track lengths differ"
            )
        if not zone_cylinders:
            raise DiskModelError("geometry needs at least one zone")
        self.heads = int(heads)
        zones: List[Zone] = []
        cylinder = 0
        lba = 0
        for cyls, spt in zip(zone_cylinders, zone_sectors_per_track):
            zones.append(
                Zone(
                    first_cylinder=cylinder,
                    cylinders=int(cyls),
                    sectors_per_track=int(spt),
                    first_lba=lba,
                )
            )
            cylinder += int(cyls)
            lba += int(cyls) * self.heads * int(spt)
        self.zones: List[Zone] = zones
        self.total_cylinders = cylinder
        self.capacity_sectors = lba
        self._zone_first_lbas = np.array([z.first_lba for z in zones], dtype=np.int64)
        self._zone_first_cyls = np.array([z.first_cylinder for z in zones], dtype=np.int64)
        self._zone_spts = np.array([z.sectors_per_track for z in zones], dtype=np.int64)

    @classmethod
    def uniform(
        cls,
        heads: int = 4,
        cylinders: int = 50_000,
        nzones: int = 10,
        outer_spt: int = 1200,
        inner_spt: int = 700,
    ) -> "DiskGeometry":
        """A plausible enterprise geometry with linearly shrinking track
        density from ``outer_spt`` to ``inner_spt`` across ``nzones``."""
        if nzones <= 0:
            raise DiskModelError(f"nzones must be > 0, got {nzones!r}")
        if cylinders < nzones:
            raise DiskModelError("need at least one cylinder per zone")
        per_zone = [cylinders // nzones] * nzones
        per_zone[-1] += cylinders - sum(per_zone)
        if nzones == 1:
            spts = [outer_spt]
        else:
            spts = [
                int(round(outer_spt + (inner_spt - outer_spt) * i / (nzones - 1)))
                for i in range(nzones)
            ]
        return cls(heads=heads, zone_cylinders=per_zone, zone_sectors_per_track=spts)

    # ------------------------------------------------------------------

    def zone_of(self, lba: int) -> Zone:
        """The zone containing ``lba``."""
        self._check_lba(lba)
        index = int(np.searchsorted(self._zone_first_lbas, lba, side="right")) - 1
        return self.zones[index]

    def cylinder_of(self, lba: int) -> int:
        """The cylinder containing ``lba``."""
        zone = self.zone_of(lba)
        per_cylinder = zone.sectors_per_track * self.heads
        return zone.first_cylinder + (lba - zone.first_lba) // per_cylinder

    def sectors_per_track_at(self, lba: int) -> int:
        """Track density at ``lba`` (determines the media transfer rate)."""
        return self.zone_of(lba).sectors_per_track

    def first_lba_of_cylinder(self, cylinder: int) -> int:
        """The first LBA of a cylinder — the inverse of :meth:`cylinder_of`.

        Used by the fault model to place reassigned sectors: spare areas
        live on the innermost cylinders, so relocating a bad sector there
        changes every later seek to it.
        """
        if cylinder < 0 or cylinder >= self.total_cylinders:
            raise DiskModelError(
                f"cylinder {cylinder!r} outside drive with "
                f"{self.total_cylinders} cylinders"
            )
        index = int(
            np.searchsorted(self._zone_first_cyls, cylinder, side="right")
        ) - 1
        zone = self.zones[index]
        per_cylinder = zone.sectors_per_track * self.heads
        return zone.first_lba + (cylinder - zone.first_cylinder) * per_cylinder

    # ------------------------------------------------------------------
    # Vectorized lookups (the simulator's batch fast path)
    # ------------------------------------------------------------------

    def _zone_indices(self, lbas: np.ndarray) -> np.ndarray:
        lbas = np.asarray(lbas, dtype=np.int64)
        if lbas.size and (int(lbas.min()) < 0 or int(lbas.max()) >= self.capacity_sectors):
            bad = lbas[(lbas < 0) | (lbas >= self.capacity_sectors)][0]
            raise DiskModelError(
                f"LBA {int(bad)!r} outside drive capacity {self.capacity_sectors}"
            )
        return np.searchsorted(self._zone_first_lbas, lbas, side="right") - 1

    def cylinders_of(self, lbas: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`cylinder_of` over an array of LBAs."""
        lbas = np.asarray(lbas, dtype=np.int64)
        zones = self._zone_indices(lbas)
        per_cylinder = self._zone_spts[zones] * self.heads
        return self._zone_first_cyls[zones] + (lbas - self._zone_first_lbas[zones]) // per_cylinder

    def sectors_per_track_of(self, lbas: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`sectors_per_track_at` over an array of LBAs."""
        return self._zone_spts[self._zone_indices(lbas)]

    def seek_distance(self, lba_a: int, lba_b: int) -> int:
        """Cylinder distance between two LBAs."""
        return abs(self.cylinder_of(lba_a) - self.cylinder_of(lba_b))

    def _check_lba(self, lba: int) -> None:
        if lba < 0 or lba >= self.capacity_sectors:
            raise DiskModelError(
                f"LBA {lba!r} outside drive capacity {self.capacity_sectors}"
            )

    def __repr__(self) -> str:
        return (
            f"DiskGeometry(heads={self.heads}, cylinders={self.total_cylinders}, "
            f"zones={len(self.zones)}, capacity={self.capacity_sectors} sectors)"
        )
