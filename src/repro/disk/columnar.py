"""Columnar replay engines: structured-array requests, inlined drive.

The reference engines in :mod:`repro.disk.simulator` step the drive one
Python method call per request, each call re-deriving geometry lookups,
seek-curve constants and cache bookkeeping. These engines consume the
:data:`~repro.traces.millisecond.REQUEST_DTYPE` structured array built
once per replay, hoist everything request-independent into vectorized
precomputation (cylinders, track densities, media transfer times), and
run the serve loop over plain Python scalars with the drive's decision
logic inlined.

They are *twins*, not approximations: every engine makes the same
decisions, in the same order, with the same floating-point operations and
the same RNG draw sequence as :meth:`repro.disk.drive.DiskDrive.service_time`
driven by the reference event loop — rotational latencies are drawn from
the drive's own generator in serve order (block-buffered;
``Generator.uniform(0, h, size=n)`` yields the same value sequence as
``n`` scalar draws, so only the *unused tail* of the final block leaves
the generator further advanced than a scalar replay would). Bit-identity
is pinned by ``tests/test_simulator_fast.py`` and the hypothesis sweep in
``tests/test_simulator.py``.

Scope: a bare :class:`~repro.disk.drive.DiskDrive` (no fault model, no
tier) with no *event-emitting* observer attached — metrics-level
observation is fine, since the registry is filled post-run from result
arrays (the engines tally cache counters locally for it). This is
exactly the gate :class:`~repro.disk.simulator.DiskSimulator` applies
before selecting a columnar engine. Cache and head state are exported from / imported back
into the drive around the loop, so post-run drive state matches the
scalar engines.
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from math import sqrt
from typing import List, Tuple

import numpy as np

from repro.disk.drive import DiskDrive
from repro.disk.mechanics import rotation_time
from repro.disk.scheduler import pick_from_sorted
from repro.units import SECTOR_BYTES

#: Rotational-latency draws are buffered in blocks of this many; bigger
#: blocks amortize the numpy call, the tail past the last media access is
#: discarded.
DRAW_BLOCK = 4096


def _precompute(drive: DiskDrive, columns: np.ndarray):
    """Request-independent per-run tables and seek-curve constants.

    The seek constants replicate :meth:`SeekProfile.seek_time` exactly:
    the boundary/stroke terms are the same float64 values the scalar
    method recomputes per call, so ``single + k * (sqrt(d) - 1.0)`` and
    ``t_boundary + slope * (d - b)`` reproduce its results bit for bit
    (``math.sqrt`` and ``np.sqrt`` agree on float64).
    """
    lbas = columns["lba"]
    sizes = columns["size"]
    geometry = drive.geometry
    rotation = rotation_time(drive.spec.rpm)
    cyl_start = geometry.cylinders_of(lbas).tolist()
    cyl_end = geometry.cylinders_of(lbas + sizes - 1).tolist()
    media = (sizes * rotation / geometry.sectors_per_track_of(lbas)).tolist()
    seek = drive.seek
    boundary = seek._boundary
    sqrt_b = np.sqrt(boundary)
    t_boundary = seek.single_cylinder + (
        seek.full_stroke - seek.single_cylinder
    ) * (sqrt_b - 1.0) / (np.sqrt(seek.max_distance) - 1.0)
    k = (t_boundary - seek.single_cylinder) / (sqrt_b - 1.0)
    slope = (seek.full_stroke - t_boundary) / (seek.max_distance - boundary)
    return (
        cyl_start,
        cyl_end,
        media,
        rotation,
        float(seek.single_cylinder),
        float(t_boundary),
        float(k),
        float(slope),
        boundary,
        seek.max_distance,
    )


# The serve body is textually repeated in the three engines below rather
# than shared through a helper: a function call per request would cost a
# third of the win. All three copies must stay in lockstep with
# DiskDrive.service_time — the bit-identity suite enforces it.


def run_fcfs_columnar(
    drive: DiskDrive, columns: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """FCFS over the columnar representation: arrival order, no queue,
    drive logic inlined. The cached twin of ``_run_fcfs_sequential``."""
    n = len(columns)
    arrival_list = columns["time"].tolist()
    lba_list = columns["lba"].tolist()
    size_list = columns["size"].tolist()
    write_list = columns["is_write"].tolist()
    nbytes_list = (columns["size"] * SECTOR_BYTES).tolist()
    (
        cyl_start, cyl_end, media_list, rotation,
        single, t_boundary, k, slope, boundary, max_distance,
    ) = _precompute(drive, columns)

    config = drive.spec.cache
    read_ahead = config.read_ahead
    write_back = config.write_back
    hit_overhead = config.hit_overhead
    buffer_cap = config.write_buffer_bytes
    ra_sectors = config.read_ahead_sectors
    seg_max = config.segment_count
    drain_rate = config.drain_rate
    overhead = drive.spec.command_overhead
    segments, dirty, absorbed, drained_total, last_drain = (
        drive.cache.export_state()
    )
    head, last_media_end = drive.export_kinematics()
    rng_uniform = drive._rng.uniform
    draw_buf: List[float] = []
    draw_pos = 0
    read_hits = 0
    absorbed_n = 0
    fallthrough_n = 0

    starts = [0.0] * n
    services = [0.0] * n
    clock = 0.0
    for i in range(n):
        arrival = arrival_list[i]
        if arrival > clock:
            clock = arrival
        lba = lba_list[i]
        size = size_list[i]
        is_write = write_list[i]
        service = -1.0
        if is_write:
            if write_back:
                shed = (clock - last_drain) * drain_rate
                if shed > dirty:
                    shed = dirty
                dirty -= shed
                drained_total += shed
                last_drain = clock
                nbytes = nbytes_list[i]
                if dirty + nbytes <= buffer_cap:
                    dirty += nbytes
                    absorbed += nbytes
                    absorbed_n += 1
                    service = hit_overhead
                else:
                    fallthrough_n += 1
        elif read_ahead:
            end = lba + size
            for seg_start, seg_stop in segments:
                if seg_start <= lba and end <= seg_stop:
                    service = hit_overhead
                    read_hits += 1
                    break
        if service < 0.0:
            if lba == last_media_end:
                positioning = 0.0
            else:
                if draw_pos == len(draw_buf):
                    draw_buf = rng_uniform(0.0, rotation, DRAW_BLOCK).tolist()
                    draw_pos = 0
                latency = draw_buf[draw_pos]
                draw_pos += 1
                distance = cyl_start[i] - head
                if distance < 0:
                    distance = -distance
                if distance == 0:
                    positioning = latency
                elif distance <= boundary:
                    positioning = single + k * (sqrt(distance) - 1.0) + latency
                else:
                    d = distance if distance < max_distance else max_distance
                    positioning = t_boundary + slope * (d - boundary) + latency
            head = cyl_end[i]
            last_media_end = lba + size
            if not is_write and read_ahead:
                segments.append((lba, last_media_end + ra_sectors))
                if len(segments) > seg_max:
                    del segments[0]
            service = overhead + positioning + media_list[i]
        starts[i] = clock
        services[i] = service
        clock += service

    drive.cache.import_state(segments, dirty, absorbed, drained_total, last_drain)
    drive.import_kinematics(head, last_media_end)
    return (
        np.asarray(starts, dtype=np.float64),
        np.asarray(services, dtype=np.float64),
        (read_hits, absorbed_n, fallthrough_n),
    )


def run_sstf_columnar(
    drive: DiskDrive, columns: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """SSTF with full queue visibility: cylinder-sorted pending list with
    the shared bisect kernel, drive logic inlined."""
    n = len(columns)
    arrival_list = columns["time"].tolist()
    lba_list = columns["lba"].tolist()
    size_list = columns["size"].tolist()
    write_list = columns["is_write"].tolist()
    nbytes_list = (columns["size"] * SECTOR_BYTES).tolist()
    (
        cyl_start, cyl_end, media_list, rotation,
        single, t_boundary, k, slope, boundary, max_distance,
    ) = _precompute(drive, columns)

    config = drive.spec.cache
    read_ahead = config.read_ahead
    write_back = config.write_back
    hit_overhead = config.hit_overhead
    buffer_cap = config.write_buffer_bytes
    ra_sectors = config.read_ahead_sectors
    seg_max = config.segment_count
    drain_rate = config.drain_rate
    overhead = drive.spec.command_overhead
    segments, dirty, absorbed, drained_total, last_drain = (
        drive.cache.export_state()
    )
    head, last_media_end = drive.export_kinematics()
    rng_uniform = drive._rng.uniform
    draw_buf: List[float] = []
    draw_pos = 0
    read_hits = 0
    absorbed_n = 0
    fallthrough_n = 0

    starts = [0.0] * n
    services = [0.0] * n
    pending: List[Tuple[int, int]] = []  # (cylinder, arrival index), sorted
    next_arrival = 0
    clock = 0.0
    completed = 0
    while completed < n:
        if not pending:
            arrival = arrival_list[next_arrival]
            if arrival > clock:
                clock = arrival
        while next_arrival < n and arrival_list[next_arrival] <= clock:
            insort(pending, (cyl_start[next_arrival], next_arrival))
            next_arrival += 1
        pos = pick_from_sorted(pending, head)
        _, i = pending.pop(pos)

        lba = lba_list[i]
        size = size_list[i]
        is_write = write_list[i]
        service = -1.0
        if is_write:
            if write_back:
                shed = (clock - last_drain) * drain_rate
                if shed > dirty:
                    shed = dirty
                dirty -= shed
                drained_total += shed
                last_drain = clock
                nbytes = nbytes_list[i]
                if dirty + nbytes <= buffer_cap:
                    dirty += nbytes
                    absorbed += nbytes
                    absorbed_n += 1
                    service = hit_overhead
                else:
                    fallthrough_n += 1
        elif read_ahead:
            end = lba + size
            for seg_start, seg_stop in segments:
                if seg_start <= lba and end <= seg_stop:
                    service = hit_overhead
                    read_hits += 1
                    break
        if service < 0.0:
            if lba == last_media_end:
                positioning = 0.0
            else:
                if draw_pos == len(draw_buf):
                    draw_buf = rng_uniform(0.0, rotation, DRAW_BLOCK).tolist()
                    draw_pos = 0
                latency = draw_buf[draw_pos]
                draw_pos += 1
                distance = cyl_start[i] - head
                if distance < 0:
                    distance = -distance
                if distance == 0:
                    positioning = latency
                elif distance <= boundary:
                    positioning = single + k * (sqrt(distance) - 1.0) + latency
                else:
                    d = distance if distance < max_distance else max_distance
                    positioning = t_boundary + slope * (d - boundary) + latency
            head = cyl_end[i]
            last_media_end = lba + size
            if not is_write and read_ahead:
                segments.append((lba, last_media_end + ra_sectors))
                if len(segments) > seg_max:
                    del segments[0]
            service = overhead + positioning + media_list[i]
        starts[i] = clock
        services[i] = service
        clock += service
        completed += 1

    drive.cache.import_state(segments, dirty, absorbed, drained_total, last_drain)
    drive.import_kinematics(head, last_media_end)
    return (
        np.asarray(starts, dtype=np.float64),
        np.asarray(services, dtype=np.float64),
        (read_hits, absorbed_n, fallthrough_n),
    )


def run_sstf_windowed_columnar(
    drive: DiskDrive, columns: np.ndarray, queue_depth: int
) -> Tuple[np.ndarray, np.ndarray]:
    """NCQ-windowed SSTF: the ``queue_depth`` oldest pending requests are
    kept as a small cylinder-sorted window, everything younger waits in a
    FIFO backlog — equivalent to the event loop's arrival-ordered
    ``queue[:queue_depth]`` slice, without rebuilding or rescanning the
    window per decision.

    The invariant is that ``window`` always holds the
    ``min(queue_depth, pending)`` *oldest* pending requests: admissions go
    to the window while it has room and to the backlog after (arrivals are
    admitted in arrival order, so backlog entries are uniformly older than
    later admissions), and each serve refills from the backlog head.
    """
    n = len(columns)
    arrival_list = columns["time"].tolist()
    lba_list = columns["lba"].tolist()
    size_list = columns["size"].tolist()
    write_list = columns["is_write"].tolist()
    nbytes_list = (columns["size"] * SECTOR_BYTES).tolist()
    (
        cyl_start, cyl_end, media_list, rotation,
        single, t_boundary, k, slope, boundary, max_distance,
    ) = _precompute(drive, columns)

    config = drive.spec.cache
    read_ahead = config.read_ahead
    write_back = config.write_back
    hit_overhead = config.hit_overhead
    buffer_cap = config.write_buffer_bytes
    ra_sectors = config.read_ahead_sectors
    seg_max = config.segment_count
    drain_rate = config.drain_rate
    overhead = drive.spec.command_overhead
    segments, dirty, absorbed, drained_total, last_drain = (
        drive.cache.export_state()
    )
    head, last_media_end = drive.export_kinematics()
    rng_uniform = drive._rng.uniform
    draw_buf: List[float] = []
    draw_pos = 0
    read_hits = 0
    absorbed_n = 0
    fallthrough_n = 0

    starts = [0.0] * n
    services = [0.0] * n
    window: List[Tuple[int, int]] = []  # (cylinder, arrival index), sorted
    backlog: deque = deque()  # arrival indices, arrival order
    next_arrival = 0
    clock = 0.0
    completed = 0
    while completed < n:
        if not window:
            arrival = arrival_list[next_arrival]
            if arrival > clock:
                clock = arrival
        while next_arrival < n and arrival_list[next_arrival] <= clock:
            if len(window) < queue_depth:
                insort(window, (cyl_start[next_arrival], next_arrival))
            else:
                backlog.append(next_arrival)
            next_arrival += 1
        pos = pick_from_sorted(window, head)
        _, i = window.pop(pos)
        if backlog:
            j = backlog.popleft()
            insort(window, (cyl_start[j], j))

        lba = lba_list[i]
        size = size_list[i]
        is_write = write_list[i]
        service = -1.0
        if is_write:
            if write_back:
                shed = (clock - last_drain) * drain_rate
                if shed > dirty:
                    shed = dirty
                dirty -= shed
                drained_total += shed
                last_drain = clock
                nbytes = nbytes_list[i]
                if dirty + nbytes <= buffer_cap:
                    dirty += nbytes
                    absorbed += nbytes
                    absorbed_n += 1
                    service = hit_overhead
                else:
                    fallthrough_n += 1
        elif read_ahead:
            end = lba + size
            for seg_start, seg_stop in segments:
                if seg_start <= lba and end <= seg_stop:
                    service = hit_overhead
                    read_hits += 1
                    break
        if service < 0.0:
            if lba == last_media_end:
                positioning = 0.0
            else:
                if draw_pos == len(draw_buf):
                    draw_buf = rng_uniform(0.0, rotation, DRAW_BLOCK).tolist()
                    draw_pos = 0
                latency = draw_buf[draw_pos]
                draw_pos += 1
                distance = cyl_start[i] - head
                if distance < 0:
                    distance = -distance
                if distance == 0:
                    positioning = latency
                elif distance <= boundary:
                    positioning = single + k * (sqrt(distance) - 1.0) + latency
                else:
                    d = distance if distance < max_distance else max_distance
                    positioning = t_boundary + slope * (d - boundary) + latency
            head = cyl_end[i]
            last_media_end = lba + size
            if not is_write and read_ahead:
                segments.append((lba, last_media_end + ra_sectors))
                if len(segments) > seg_max:
                    del segments[0]
            service = overhead + positioning + media_list[i]
        starts[i] = clock
        services[i] = service
        clock += service
        completed += 1

    drive.cache.import_state(segments, dirty, absorbed, drained_total, last_drain)
    drive.import_kinematics(head, last_media_end)
    return (
        np.asarray(starts, dtype=np.float64),
        np.asarray(services, dtype=np.float64),
        (read_hits, absorbed_n, fallthrough_n),
    )
