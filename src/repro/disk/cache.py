"""On-board cache model: read-ahead segments and a write-back buffer.

Enterprise drives of the paper's era shipped 8-16 MiB of cache split into
segments used for read-ahead, plus (when write caching is enabled) a
write-back buffer that completes writes at electronic speed and destages
them to media later. Both behaviors shape the disk-level service times —
sequential reads hit the read-ahead, bursts of writes are absorbed — so
both are modeled.

Approximation note: destage traffic is *not* added to the busy timeline;
instead the write buffer drains at a configurable rate and stops
absorbing when full. Since the paper's drives run at moderate utilization
with long idle stretches, drained-during-idle is the common case and the
approximation changes busy time only when the buffer saturates — at which
point writes fall through to media timing anyway.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import DiskModelError
from repro.units import MIB, ms


@dataclass(frozen=True)
class CacheConfig:
    """Configuration of the on-board cache.

    Attributes
    ----------
    read_ahead:
        Whether the drive prefetches past each read (sequential reads hit).
    write_back:
        Whether writes complete in the buffer when there is room.
    write_buffer_bytes:
        Capacity available to dirty write data.
    hit_overhead:
        Service time of a cache hit (electronics + interface transfer).
    read_ahead_sectors:
        How far past the end of a read the prefetch extends.
    segment_count:
        Number of read-ahead extents the cache remembers.
    drain_rate:
        Bytes/second at which dirty data destages to media (background).
    """

    read_ahead: bool = True
    write_back: bool = True
    write_buffer_bytes: int = 8 * MIB
    hit_overhead: float = ms(0.1)
    read_ahead_sectors: int = 512
    segment_count: int = 16
    drain_rate: float = 60.0 * MIB

    def __post_init__(self) -> None:
        if self.write_buffer_bytes < 0:
            raise DiskModelError(
                f"write_buffer_bytes must be >= 0, got {self.write_buffer_bytes!r}"
            )
        if self.hit_overhead < 0:
            raise DiskModelError(f"hit_overhead must be >= 0, got {self.hit_overhead!r}")
        if self.read_ahead_sectors < 0:
            raise DiskModelError(
                f"read_ahead_sectors must be >= 0, got {self.read_ahead_sectors!r}"
            )
        if self.segment_count <= 0:
            raise DiskModelError(f"segment_count must be > 0, got {self.segment_count!r}")
        if self.drain_rate <= 0:
            raise DiskModelError(f"drain_rate must be > 0, got {self.drain_rate!r}")

    @classmethod
    def disabled(cls) -> "CacheConfig":
        """A configuration with both read-ahead and write-back off."""
        return cls(read_ahead=False, write_back=False)


class DiskCache:
    """Mutable cache state evolved request by request by the drive model."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._segments: deque = deque(maxlen=config.segment_count)
        self._dirty_bytes = 0.0
        self._absorbed_bytes = 0.0
        self._drained_bytes = 0.0
        self._last_drain_time = 0.0
        #: Optional :class:`~repro.obs.Observer`; attached by the
        #: simulator. Hit/absorb accounting only — never changes what the
        #: cache decides, so observed runs stay bit-identical.
        self.obs = None

    def reset(self) -> None:
        """Forget all cached state (used between simulator runs).

        The attached observer (if any) survives: it describes who is
        watching, not one run's history.
        """
        self._segments.clear()
        self._dirty_bytes = 0.0
        self._absorbed_bytes = 0.0
        self._drained_bytes = 0.0
        self._last_drain_time = 0.0

    # ------------------------------------------------------------------
    # Columnar-engine state transfer
    # ------------------------------------------------------------------

    def export_state(self):
        """Snapshot of the mutable cache state as plain Python values:
        ``(segments, dirty, absorbed, drained, last_drain_time)``.

        The columnar replay engines evolve this state with inlined copies
        of :meth:`read_hit` / :meth:`absorb_write` / :meth:`_drain_to`
        (same decisions, same float operations — bit-identity is pinned
        by the property suite) and hand it back via
        :meth:`import_state` when the run finishes.
        """
        return (
            list(self._segments),
            self._dirty_bytes,
            self._absorbed_bytes,
            self._drained_bytes,
            self._last_drain_time,
        )

    def import_state(self, segments, dirty, absorbed, drained, last_drain) -> None:
        """Adopt state evolved outside the cache (see :meth:`export_state`)."""
        self._segments = deque(segments, maxlen=self.config.segment_count)
        self._dirty_bytes = dirty
        self._absorbed_bytes = absorbed
        self._drained_bytes = drained
        self._last_drain_time = last_drain

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    def read_hit(self, lba: int, nsectors: int) -> bool:
        """Whether a read of ``[lba, lba + nsectors)`` is fully covered by
        a remembered read-ahead extent."""
        if not self.config.read_ahead:
            return False
        end = lba + nsectors
        hit = any(start <= lba and end <= stop for start, stop in self._segments)
        if hit and self.obs is not None and self.obs.enabled:
            self.obs.metrics.counter("cache.read_hits").inc()
        return hit

    def note_read(self, lba: int, nsectors: int) -> None:
        """Record the extent a read (plus prefetch) leaves in the cache."""
        if not self.config.read_ahead:
            return
        self._segments.append((lba, lba + nsectors + self.config.read_ahead_sectors))

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------

    @property
    def dirty_bytes(self) -> float:
        """Bytes currently waiting in the write buffer (pre-drain view)."""
        return self._dirty_bytes

    @property
    def absorbed_bytes(self) -> float:
        """Total bytes ever completed in the buffer this run."""
        return self._absorbed_bytes

    @property
    def drained_bytes(self) -> float:
        """Total bytes destaged to media this run.

        Conservation invariant (asserted by property tests):
        ``absorbed_bytes == drained_bytes + dirty_bytes`` to within float
        rounding — the buffer neither invents nor loses write data at
        drain boundaries.
        """
        return self._drained_bytes

    def absorb_write(self, nbytes: int, now: float) -> bool:
        """Try to complete a write of ``nbytes`` at time ``now`` in the
        buffer. Returns ``True`` on success; ``False`` means the buffer is
        full and the write must take media timing."""
        if not self.config.write_back:
            return False
        self._drain_to(now)
        obs = self.obs
        if self._dirty_bytes + nbytes > self.config.write_buffer_bytes:
            if obs is not None and obs.enabled:
                obs.metrics.counter("cache.writes_fallthrough").inc()
            return False
        self._dirty_bytes += nbytes
        self._absorbed_bytes += nbytes
        if obs is not None and obs.enabled:
            obs.metrics.counter("cache.writes_absorbed").inc()
            obs.emit(
                "write_absorbed", now, "cache",
                nbytes=int(nbytes), dirty_bytes=self._dirty_bytes,
            )
        return True

    def _drain_to(self, now: float) -> None:
        if now < self._last_drain_time:
            # The simulator's clock never goes backwards; guard against
            # misuse from interactive exploration.
            raise DiskModelError(
                f"cache clock moved backwards: {now} < {self._last_drain_time}"
            )
        elapsed = now - self._last_drain_time
        # Destage exactly what is there, never more: clamping the
        # *decrement* (not just the result) keeps the absorbed ==
        # drained + dirty ledger balanced at every drain boundary —
        # crediting the full elapsed * rate would count bytes the buffer
        # never held as drained.
        drained = min(self._dirty_bytes, elapsed * self.config.drain_rate)
        self._dirty_bytes -= drained
        self._drained_bytes += drained
        self._last_drain_time = now
