"""Disk substrate: a mechanical drive model and trace-replay simulator.

The paper measures utilization and idleness on real enterprise drives.
Those drives are unavailable, so this subpackage provides the substitute:
a zoned-geometry mechanical model (seek curve, rotational latency, zoned
transfer rates, on-board cache) of a late-2000s enterprise drive, a
queueing scheduler, and an event-driven simulator that replays a
:class:`~repro.traces.RequestTrace` and produces per-request timings plus
the busy/idle timeline the utilization and idleness analyses consume.
"""

from repro.disk.geometry import DiskGeometry, Zone
from repro.disk.mechanics import SeekProfile, rotation_time, transfer_time
from repro.disk.cache import CacheConfig, DiskCache
from repro.disk.scheduler import FcfsScheduler, SstfScheduler, ScanScheduler, make_scheduler
from repro.disk.drive import DiskDrive, DriveSpec, cheetah_10k, cheetah_15k, nearline_7200
from repro.disk.faults import (
    FaultEvent,
    FaultModel,
    FaultProfile,
    available_fault_profiles,
    get_fault_profile,
    light_faults,
    moderate_faults,
    severe_faults,
)
from repro.disk.simulator import DiskSimulator, SimulationResult
from repro.disk.timeline import BusyIdleTimeline
from repro.disk.power import EnergyReport, PowerProfile, baseline_energy, evaluate_spin_down, sweep_timeouts
from repro.disk.array import MirroredPair, StripedArray, member_imbalance
from repro.disk.raid5 import Raid5Array, write_amplification

__all__ = [
    "DiskGeometry",
    "Zone",
    "SeekProfile",
    "rotation_time",
    "transfer_time",
    "CacheConfig",
    "DiskCache",
    "FcfsScheduler",
    "SstfScheduler",
    "ScanScheduler",
    "make_scheduler",
    "DiskDrive",
    "DriveSpec",
    "cheetah_10k",
    "cheetah_15k",
    "nearline_7200",
    "DiskSimulator",
    "SimulationResult",
    "FaultEvent",
    "FaultModel",
    "FaultProfile",
    "available_fault_profiles",
    "get_fault_profile",
    "light_faults",
    "moderate_faults",
    "severe_faults",
    "BusyIdleTimeline",
    "PowerProfile",
    "EnergyReport",
    "baseline_energy",
    "evaluate_spin_down",
    "sweep_timeouts",
    "StripedArray",
    "MirroredPair",
    "member_imbalance",
    "Raid5Array",
    "write_amplification",
]
