"""The busy/idle timeline: the ground truth behind utilization and
idleness analyses.

A single-server disk alternates between busy intervals (servicing one
request after another) and idle intervals. :class:`BusyIdleTimeline`
stores the merged busy intervals over an observation window and derives
everything the paper reports about them: overall and windowed
utilization, busy-period lengths, and idle-interval lengths.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.errors import SimulationError


class BusyIdleTimeline:
    """Merged busy intervals over ``[0, span]``.

    Parameters
    ----------
    intervals:
        ``(start, end)`` pairs with ``0 <= start <= end``; they may abut
        or overlap (they are merged) but are typically the back-to-back
        service intervals a single-server simulation produces.
    span:
        Observation window length; must cover every interval.
    """

    def __init__(self, intervals: Sequence[Tuple[float, float]], span: float) -> None:
        if span < 0:
            raise SimulationError(f"span must be >= 0, got {span!r}")
        self.span = float(span)
        pairs = sorted((float(s), float(e)) for s, e in intervals)
        merged_starts = []
        merged_ends = []
        for start, end in pairs:
            if end < start:
                raise SimulationError(f"interval end {end!r} precedes start {start!r}")
            if start < 0 or end > self.span + 1e-9:
                raise SimulationError(
                    f"interval [{start}, {end}] outside window [0, {self.span}]"
                )
            if start == end:
                continue  # zero-length intervals carry no busy time
            if merged_ends and start <= merged_ends[-1]:
                merged_ends[-1] = max(merged_ends[-1], end)
            else:
                merged_starts.append(start)
                merged_ends.append(end)
        self._starts = np.asarray(merged_starts, dtype=np.float64)
        self._ends = np.minimum(np.asarray(merged_ends, dtype=np.float64), self.span)
        self._starts.setflags(write=False)
        self._ends.setflags(write=False)

    # ------------------------------------------------------------------

    @property
    def starts(self) -> np.ndarray:
        """Merged busy-interval start times (read-only, sorted)."""
        return self._starts

    @property
    def ends(self) -> np.ndarray:
        """Merged busy-interval end times (read-only, sorted)."""
        return self._ends

    @property
    def n_busy_periods(self) -> int:
        """Number of maximal busy periods."""
        return int(self._starts.size)

    def busy_periods(self) -> np.ndarray:
        """Lengths of the maximal busy periods, seconds."""
        return self._ends - self._starts

    def idle_periods(self) -> np.ndarray:
        """Lengths of the idle intervals, seconds, including the leading
        interval before the first busy period and the trailing interval
        after the last one (when non-empty)."""
        if self.n_busy_periods == 0:
            return np.array([self.span]) if self.span > 0 else np.zeros(0)
        gaps = self._starts[1:] - self._ends[:-1]
        pieces = [gaps]
        if self._starts[0] > 0:
            pieces.insert(0, np.array([self._starts[0]]))
        if self._ends[-1] < self.span:
            pieces.append(np.array([self.span - self._ends[-1]]))
        idle = np.concatenate(pieces) if pieces else np.zeros(0)
        return idle[idle > 0]

    def idle_intervals(self, min_length: float = 0.0) -> np.ndarray:
        """The idle intervals as an ``(n, 2)`` array of ``(start, end)``
        pairs in time order, including the leading and trailing intervals
        (positions, where :meth:`idle_periods` gives only lengths).

        ``min_length`` drops intervals shorter than the given number of
        seconds — background-work planners only care about intervals a
        chunk (plus setup) can fit into.
        """
        if min_length < 0:
            raise SimulationError(f"min_length must be >= 0, got {min_length!r}")
        if self.n_busy_periods == 0:
            if self.span > 0 and self.span >= min_length:
                return np.array([[0.0, self.span]])
            return np.zeros((0, 2))
        pairs = []
        if self._starts[0] > 0:
            pairs.append((0.0, float(self._starts[0])))
        for i in range(self.n_busy_periods - 1):
            gap_start = float(self._ends[i])
            gap_end = float(self._starts[i + 1])
            if gap_end > gap_start:
                pairs.append((gap_start, gap_end))
        if self._ends[-1] < self.span:
            pairs.append((float(self._ends[-1]), self.span))
        if min_length > 0:
            pairs = [(s, e) for s, e in pairs if e - s >= min_length]
        return np.array(pairs) if pairs else np.zeros((0, 2))

    @property
    def total_busy(self) -> float:
        """Total busy time, seconds."""
        return float(np.sum(self._ends - self._starts))

    @property
    def total_idle(self) -> float:
        """Total idle time, seconds."""
        return self.span - self.total_busy

    @property
    def utilization(self) -> float:
        """Busy fraction of the window (NaN for a zero-length window)."""
        if self.span == 0:
            return float("nan")
        return self.total_busy / self.span

    # ------------------------------------------------------------------

    def busy_time_before(self, t: np.ndarray) -> np.ndarray:
        """Cumulative busy time in ``[0, t]`` for each ``t`` (vectorized).

        This is the integral of the busy indicator, computed in
        O((n + m) log n) from the merged intervals.
        """
        t = np.asarray(t, dtype=np.float64)
        if self.n_busy_periods == 0:
            return np.zeros_like(t)
        lengths = self._ends - self._starts
        cumulative = np.concatenate([[0.0], np.cumsum(lengths)])
        complete = np.searchsorted(self._ends, t, side="right")
        result = cumulative[complete]
        partial_index = np.minimum(complete, self.n_busy_periods - 1)
        in_partial = (complete < self.n_busy_periods) & (
            t > self._starts[partial_index]
        )
        return result + np.where(in_partial, t - self._starts[partial_index], 0.0)

    def utilization_series(self, scale: float) -> np.ndarray:
        """Busy fraction per ``scale``-second window across the span.

        The final window may be truncated by the span's end; its
        utilization is normalized by its true (shorter) length.
        """
        if scale <= 0:
            raise SimulationError(f"scale must be > 0, got {scale!r}")
        if self.span == 0:
            return np.zeros(0)
        nbins = int(np.ceil(self.span / scale))
        edges = np.minimum(np.arange(nbins + 1) * scale, self.span)
        busy_at_edges = self.busy_time_before(edges)
        widths = np.diff(edges)
        with np.errstate(invalid="ignore", divide="ignore"):
            series = np.diff(busy_at_edges) / widths
        return np.clip(np.nan_to_num(series, nan=0.0), 0.0, 1.0)

    def __repr__(self) -> str:
        return (
            f"BusyIdleTimeline(span={self.span:.3f}s, "
            f"busy_periods={self.n_busy_periods}, "
            f"utilization={self.utilization:.4f})"
        )
