"""Mechanical timing: seek curve, rotation and media transfer.

The standard disk-timing decomposition is

``service = overhead + seek(distance) + rotational latency + transfer``.

The seek curve uses the classical two-regime model (square-root for short
seeks where the arm is accelerating, linear for long coasting seeks),
pinned to the three numbers drive data sheets publish: single-cylinder,
average, and full-stroke seek time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DiskModelError


@dataclass(frozen=True)
class SeekProfile:
    """A seek-time curve calibrated from data-sheet figures.

    Attributes
    ----------
    single_cylinder:
        Seek time for a 1-cylinder move, seconds.
    full_stroke:
        Seek time across the whole stroke, seconds.
    max_distance:
        Stroke length in cylinders.
    boundary_fraction:
        Fraction of the stroke below which the square-root (acceleration)
        regime applies; the linear regime covers the rest. 0.3 matches
        measured curves of the era well.
    """

    single_cylinder: float
    full_stroke: float
    max_distance: int
    boundary_fraction: float = 0.3

    def __post_init__(self) -> None:
        if self.single_cylinder <= 0 or self.full_stroke <= self.single_cylinder:
            raise DiskModelError(
                "need 0 < single_cylinder < full_stroke, got "
                f"{self.single_cylinder!r} and {self.full_stroke!r}"
            )
        if self.max_distance <= 1:
            raise DiskModelError(f"max_distance must be > 1, got {self.max_distance!r}")
        if not 0.0 < self.boundary_fraction < 1.0:
            raise DiskModelError(
                f"boundary_fraction must be in (0, 1), got {self.boundary_fraction!r}"
            )

    @property
    def _boundary(self) -> int:
        return max(2, int(self.boundary_fraction * self.max_distance))

    def seek_time(self, distance: int) -> float:
        """Seek time in seconds for a move of ``distance`` cylinders.

        0 for distance 0; square-root growth up to the regime boundary;
        linear from the boundary to the full stroke. The curve is
        continuous and monotone by construction.
        """
        if distance < 0:
            raise DiskModelError(f"seek distance must be >= 0, got {distance!r}")
        if distance == 0:
            return 0.0
        d = min(distance, self.max_distance)
        b = self._boundary
        # sqrt regime: t(d) = single + k * (sqrt(d) - 1), pinned so that
        # t(1) = single_cylinder and t(b) = t_boundary.
        t_boundary = self.single_cylinder + (self.full_stroke - self.single_cylinder) * (
            np.sqrt(b) - 1.0
        ) / (np.sqrt(self.max_distance) - 1.0)
        if d <= b:
            k = (t_boundary - self.single_cylinder) / (np.sqrt(b) - 1.0)
            return float(self.single_cylinder + k * (np.sqrt(d) - 1.0))
        slope = (self.full_stroke - t_boundary) / (self.max_distance - b)
        return float(t_boundary + slope * (d - b))

    def seek_times(self, distances: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`seek_time` over an array of distances.

        Evaluates the same two-regime curve with the same floating-point
        operations, so each element equals the scalar result exactly.
        """
        d = np.asarray(distances, dtype=np.int64)
        if d.size and int(d.min()) < 0:
            raise DiskModelError(f"seek distance must be >= 0, got {int(d.min())!r}")
        d = np.minimum(d, self.max_distance)
        b = self._boundary
        t_boundary = self.single_cylinder + (self.full_stroke - self.single_cylinder) * (
            np.sqrt(b) - 1.0
        ) / (np.sqrt(self.max_distance) - 1.0)
        k = (t_boundary - self.single_cylinder) / (np.sqrt(b) - 1.0)
        slope = (self.full_stroke - t_boundary) / (self.max_distance - b)
        sqrt_regime = self.single_cylinder + k * (np.sqrt(d) - 1.0)
        linear_regime = t_boundary + slope * (d - b)
        times = np.where(d <= b, sqrt_regime, linear_regime)
        return np.where(d == 0, 0.0, times)

    def average_seek(self, samples: int = 512) -> float:
        """Mean seek time over uniformly random ordered cylinder pairs,
        evaluated by the exact distance distribution of a uniform stroke
        (triangular, density ``2(1 - d/D)/D``)."""
        distances = np.linspace(1, self.max_distance, samples)
        weights = 2.0 * (1.0 - distances / self.max_distance) / self.max_distance
        weights /= weights.sum()
        times = np.array([self.seek_time(int(round(d))) for d in distances])
        return float(np.dot(weights, times))


def rotation_time(rpm: float) -> float:
    """Time of one full platter revolution in seconds."""
    if rpm <= 0:
        raise DiskModelError(f"rpm must be > 0, got {rpm!r}")
    return 60.0 / rpm


def transfer_time(nsectors: int, sectors_per_track: int, rpm: float) -> float:
    """Media transfer time for ``nsectors`` at the given track density.

    One revolution reads one track, so the rate is
    ``sectors_per_track / rotation_time`` sectors per second. Track and
    cylinder switch overheads are folded into the drive's fixed overhead
    rather than modeled per boundary.
    """
    if nsectors <= 0:
        raise DiskModelError(f"nsectors must be > 0, got {nsectors!r}")
    if sectors_per_track <= 0:
        raise DiskModelError(
            f"sectors_per_track must be > 0, got {sectors_per_track!r}"
        )
    return nsectors * rotation_time(rpm) / sectors_per_track
