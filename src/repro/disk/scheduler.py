"""Request-queue scheduling disciplines.

When requests queue at a busy drive, the order they are served in shapes
service times (positioning distance) and hence utilization. Three
classical disciplines are provided: FCFS (the measurement baseline), SSTF
(greedy shortest seek), and SCAN (the elevator). The ablation bench A1
compares them on the same trace.

A scheduler is a picker: given the pending entries and the current head
cylinder, return the index of the entry to serve next. Entries are
``(cylinder, insertion_order)`` pairs plus an opaque payload managed by
the simulator.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List, Protocol, Sequence, Tuple

from repro.errors import DiskModelError

#: One queue entry as seen by a scheduler: (cylinder, arrival order).
QueueEntry = Tuple[int, int]


def pick_from_sorted(entries: Sequence[QueueEntry], head_cylinder: int) -> int:
    """Index of the entry :class:`SstfScheduler` would pick, computed on a
    ``(cylinder, arrival order)``-sorted sequence in O(log n) comparisons.

    Bisect for the head position and compare the two boundary *runs*
    (equal-cylinder entries are contiguous and arrival-ordered, so each
    run's first entry is its best): the winner is exactly the entry with
    minimal ``(|cylinder - head_cylinder|, arrival order)``. Both the
    simulator's full-visibility SSTF path and the columnar NCQ window use
    this kernel; its equivalence to the linear scan is pinned by the
    bit-identity suite.
    """
    split = bisect_left(entries, (head_cylinder,))
    if split == len(entries):
        # Everything is below the head: nearest is the last run's first entry.
        return bisect_left(entries, (entries[-1][0],))
    if split == 0:
        return 0
    above = entries[split]
    below_cyl = entries[split - 1][0]
    run_start = bisect_left(entries, (below_cyl,))
    below = entries[run_start]
    if (head_cylinder - below_cyl, below[1]) < (above[0] - head_cylinder, above[1]):
        return run_start
    return split


class Scheduler(Protocol):
    """Protocol every scheduling discipline implements."""

    name: str

    def pick(self, queue: List[QueueEntry], head_cylinder: int) -> int:
        """Index into ``queue`` of the entry to serve next."""
        ...  # pragma: no cover - protocol body


class FcfsScheduler:
    """First-come first-served: arrival order, no reordering."""

    name = "fcfs"

    def pick(self, queue: List[QueueEntry], head_cylinder: int) -> int:
        if not queue:
            raise DiskModelError("cannot pick from an empty queue")
        best = 0
        for i in range(1, len(queue)):
            if queue[i][1] < queue[best][1]:
                best = i
        return best


class SstfScheduler:
    """Shortest seek time first: the entry nearest the head wins; ties
    break by arrival order so the discipline is deterministic."""

    name = "sstf"

    def pick(self, queue: List[QueueEntry], head_cylinder: int) -> int:
        if not queue:
            raise DiskModelError("cannot pick from an empty queue")
        best = 0
        best_key = (abs(queue[0][0] - head_cylinder), queue[0][1])
        for i in range(1, len(queue)):
            key = (abs(queue[i][0] - head_cylinder), queue[i][1])
            if key < best_key:
                best, best_key = i, key
        return best


class ScanScheduler:
    """The elevator: sweep in one direction serving requests in cylinder
    order, reverse at the last pending request in that direction."""

    name = "scan"

    def __init__(self) -> None:
        self._direction = 1  # +1 toward higher cylinders

    def pick(self, queue: List[QueueEntry], head_cylinder: int) -> int:
        if not queue:
            raise DiskModelError("cannot pick from an empty queue")
        ahead = [
            (cyl, order, i)
            for i, (cyl, order) in enumerate(queue)
            if (cyl - head_cylinder) * self._direction >= 0
        ]
        if not ahead:
            self._direction = -self._direction
            ahead = [
                (cyl, order, i)
                for i, (cyl, order) in enumerate(queue)
                if (cyl - head_cylinder) * self._direction >= 0
            ]
        # Nearest in the sweep direction; ties by arrival order.
        ahead.sort(key=lambda e: (abs(e[0] - head_cylinder), e[1]))
        return ahead[0][2]


def make_scheduler(name: str) -> Scheduler:
    """Instantiate a scheduler by name: ``'fcfs'``, ``'sstf'`` or ``'scan'``."""
    factories = {
        "fcfs": FcfsScheduler,
        "sstf": SstfScheduler,
        "scan": ScanScheduler,
    }
    try:
        return factories[name.lower()]()
    except KeyError:
        raise DiskModelError(
            f"unknown scheduler {name!r}; expected one of {sorted(factories)}"
        ) from None
