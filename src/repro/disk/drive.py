"""The drive model: specs, presets and per-request service times.

:class:`DriveSpec` bundles the data-sheet parameters of one drive model;
:class:`DiskDrive` is the stateful object the simulator drives, combining
geometry, seek curve, rotation, cache and head position into a service
time per request.

The presets approximate the enterprise drive classes of the paper's era:
a 10K-RPM mainstream enterprise drive (the family the Lifetime traces
would cover), a 15K-RPM performance drive, and a 7200-RPM nearline drive.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.disk.cache import CacheConfig, DiskCache
from repro.disk.geometry import DiskGeometry
from repro.disk.mechanics import SeekProfile, rotation_time, transfer_time
from repro.errors import DiskModelError
from repro.units import SECTOR_BYTES, ms


@dataclass(frozen=True)
class DriveSpec:
    """Data-sheet level description of a drive model."""

    name: str
    rpm: float
    heads: int
    cylinders: int
    nzones: int
    outer_spt: int
    inner_spt: int
    single_cylinder_seek: float
    full_stroke_seek: float
    command_overhead: float = ms(0.3)
    cache: CacheConfig = field(default_factory=CacheConfig)

    def __post_init__(self) -> None:
        if self.rpm <= 0:
            raise DiskModelError(f"rpm must be > 0, got {self.rpm!r}")
        if self.command_overhead < 0:
            raise DiskModelError(
                f"command_overhead must be >= 0, got {self.command_overhead!r}"
            )

    def geometry(self) -> DiskGeometry:
        """Instantiate the zoned geometry this spec describes."""
        return DiskGeometry.uniform(
            heads=self.heads,
            cylinders=self.cylinders,
            nzones=self.nzones,
            outer_spt=self.outer_spt,
            inner_spt=self.inner_spt,
        )

    def seek_profile(self) -> SeekProfile:
        """Instantiate the seek curve this spec describes."""
        return SeekProfile(
            single_cylinder=self.single_cylinder_seek,
            full_stroke=self.full_stroke_seek,
            max_distance=self.cylinders,
        )

    @property
    def sustained_bandwidth(self) -> float:
        """Media transfer rate at the middle zone, bytes/second — the
        "available disk bandwidth" the utilization analyses normalize by."""
        mid_spt = (self.outer_spt + self.inner_spt) / 2.0
        return mid_spt * SECTOR_BYTES / rotation_time(self.rpm)

    @property
    def capacity_sectors(self) -> int:
        """Total addressable sectors."""
        return self.geometry().capacity_sectors

    def with_cache(self, cache: CacheConfig) -> "DriveSpec":
        """A copy of this spec with a different cache configuration."""
        return replace(self, cache=cache)


def cheetah_10k() -> DriveSpec:
    """A 10K-RPM enterprise drive (~90 GB, ~80 MB/s sustained)."""
    return DriveSpec(
        name="enterprise-10k",
        rpm=10_000,
        heads=4,
        cylinders=50_000,
        nzones=10,
        outer_spt=1200,
        inner_spt=700,
        single_cylinder_seek=ms(0.5),
        full_stroke_seek=ms(9.0),
    )


def cheetah_15k() -> DriveSpec:
    """A 15K-RPM performance enterprise drive (~65 GB, ~135 MB/s)."""
    return DriveSpec(
        name="enterprise-15k",
        rpm=15_000,
        heads=3,
        cylinders=40_000,
        nzones=10,
        outer_spt=1300,
        inner_spt=800,
        single_cylinder_seek=ms(0.4),
        full_stroke_seek=ms(7.0),
    )


def nearline_7200() -> DriveSpec:
    """A 7200-RPM nearline/capacity drive (~320 GB, ~70 MB/s)."""
    return DriveSpec(
        name="nearline-7200",
        rpm=7_200,
        heads=6,
        cylinders=90_000,
        nzones=12,
        outer_spt=1400,
        inner_spt=900,
        single_cylinder_seek=ms(0.8),
        full_stroke_seek=ms(16.0),
    )


class DiskDrive:
    """Stateful drive: evolves head position and cache as it services
    requests, returning each request's service time.

    Rotational latency is sampled uniformly over one revolution with a
    drive-local RNG (the head lands at an effectively random rotational
    offset after a seek), except for media accesses contiguous with the
    previous one, which proceed with zero positioning cost — the head is
    already there.
    """

    def __init__(self, spec: DriveSpec, seed: int = 0, faults=None) -> None:
        self.spec = spec
        self.geometry = spec.geometry()
        self.seek = spec.seek_profile()
        self.cache = DiskCache(spec.cache)
        self._rng = np.random.default_rng(seed)
        self._seed = seed
        self._head_cylinder = 0
        self._last_media_end: int = -1  # LBA after the previous media access
        #: Optional :class:`~repro.disk.faults.FaultModel`; when attached,
        #: every media access runs through its recovery semantics.
        self.faults = faults
        self._last_fault = None
        #: Optional :class:`~repro.obs.Observer`; attached by the
        #: simulator at trace level so seeks are recorded as events.
        #: Never consulted on the vectorized path and never touches the
        #: RNG, so observed and unobserved runs are bit-identical.
        self.obs = None

    def reset(self) -> None:
        """Return the drive to its initial state (fresh RNG included)."""
        self.cache.reset()
        self._rng = np.random.default_rng(self._seed)
        self._head_cylinder = 0
        self._last_media_end = -1
        self._last_fault = None
        if self.faults is not None:
            self.faults.reset()

    @property
    def head_cylinder(self) -> int:
        """Cylinder currently under the heads."""
        return self._head_cylinder

    def export_kinematics(self):
        """``(head_cylinder, last_media_end)`` — the motion state the
        columnar engines evolve locally and restore on completion."""
        return self._head_cylinder, self._last_media_end

    def import_kinematics(self, head_cylinder: int, last_media_end: int) -> None:
        """Adopt motion state evolved outside the drive (the RNG is *not*
        part of this snapshot: engines draw rotational latencies straight
        from ``self._rng`` in serve order, so it advances in place)."""
        self._head_cylinder = head_cylinder
        self._last_media_end = last_media_end

    def cylinder_of(self, lba: int) -> int:
        """Delegate to the geometry (used by the scheduler glue), through
        the fault model's reassignment map when one is attached — the
        scheduler must aim where the heads will actually go."""
        if self.faults is not None:
            lba = self.faults.effective_lba(lba)
        return self.geometry.cylinder_of(lba)

    def take_fault_event(self):
        """Pop the fault event of the most recent ``service_time`` call
        (``None`` when it ran clean). The simulator collects these."""
        event = self._last_fault
        self._last_fault = None
        return event

    def service_time(self, lba: int, nsectors: int, is_write: bool, now: float) -> float:
        """Service time in seconds for one request starting at ``now``,
        advancing the drive's internal state.

        Raises :class:`DiskModelError` if the request extends past the
        drive's capacity.
        """
        if nsectors <= 0:
            raise DiskModelError(f"nsectors must be > 0, got {nsectors!r}")
        if lba < 0 or lba + nsectors > self.geometry.capacity_sectors:
            raise DiskModelError(
                f"request [{lba}, {lba + nsectors}) exceeds capacity "
                f"{self.geometry.capacity_sectors}"
            )

        faults = self.faults
        if faults is not None:
            self._last_fault = None

        if not is_write and self.cache.read_hit(lba, nsectors):
            return self.spec.cache.hit_overhead

        if is_write and self.cache.absorb_write(nsectors * SECTOR_BYTES, now):
            return self.spec.cache.hit_overhead

        # Media access: position and transfer. With a fault model attached
        # the heads go to the reassigned location, not the logical LBA.
        media_lba = lba if faults is None else faults.effective_lba(lba, nsectors)
        target_cylinder = self.geometry.cylinder_of(media_lba)
        contiguous = media_lba == self._last_media_end
        if contiguous:
            positioning = 0.0
        else:
            distance = abs(target_cylinder - self._head_cylinder)
            latency = float(self._rng.uniform(0.0, rotation_time(self.spec.rpm)))
            seek_seconds = self.seek.seek_time(distance)
            positioning = seek_seconds + latency
            obs = self.obs
            if obs is not None and obs.tracing and distance > 0:
                obs.emit(
                    "seek_start", now, "drive",
                    from_cylinder=self._head_cylinder,
                    to_cylinder=target_cylinder,
                    distance=distance,
                )
                obs.emit(
                    "seek_end", now + seek_seconds, "drive",
                    to_cylinder=target_cylinder,
                )
        media = transfer_time(
            nsectors, self.geometry.sectors_per_track_at(media_lba), self.spec.rpm
        )
        self._head_cylinder = self.geometry.cylinder_of(media_lba + nsectors - 1)
        self._last_media_end = media_lba + nsectors
        if not is_write:
            self.cache.note_read(lba, nsectors)
        service = self.spec.command_overhead + positioning + media
        if faults is not None:
            service, self._last_fault = faults.on_media_access(
                lba, nsectors, service, now
            )
        return service

    def media_service_times(self, lbas: np.ndarray, nsectors: np.ndarray) -> np.ndarray:
        """Service times for a batch of requests served back-to-back in
        the given order, every one as a media access (the cache is
        bypassed entirely).

        This is the vectorized twin of :meth:`service_time` for the
        simulator's FCFS fast path: with caching disabled the two agree
        element for element, including the rotational-latency RNG draws
        (one per non-contiguous access, in serve order). Head position,
        the contiguity marker and the RNG advance exactly as a scalar
        replay would leave them.
        """
        lbas = np.asarray(lbas, dtype=np.int64)
        nsectors = np.asarray(nsectors, dtype=np.int64)
        n = lbas.size
        if n == 0:
            return np.zeros(0, dtype=np.float64)
        if int(nsectors.min()) <= 0:
            raise DiskModelError(
                f"nsectors must be > 0, got {int(nsectors.min())!r}"
            )
        ends = lbas + nsectors
        if int(lbas.min()) < 0 or int(ends.max()) > self.geometry.capacity_sectors:
            raise DiskModelError(
                "batch addresses beyond capacity "
                f"{self.geometry.capacity_sectors}"
            )

        cyl_start = self.geometry.cylinders_of(lbas)
        cyl_end = self.geometry.cylinders_of(ends - 1)
        spt = self.geometry.sectors_per_track_of(lbas)

        prev_end = np.empty(n, dtype=np.int64)
        prev_end[0] = self._last_media_end
        prev_end[1:] = ends[:-1]
        contiguous = lbas == prev_end

        prev_cyl = np.empty(n, dtype=np.int64)
        prev_cyl[0] = self._head_cylinder
        prev_cyl[1:] = cyl_end[:-1]
        distances = np.abs(cyl_start - prev_cyl)

        rotation = rotation_time(self.spec.rpm)
        latencies = np.zeros(n, dtype=np.float64)
        noncontiguous = ~contiguous
        draws = int(noncontiguous.sum())
        if draws:
            latencies[noncontiguous] = self._rng.uniform(0.0, rotation, size=draws)
        positioning = np.where(
            contiguous, 0.0, self.seek.seek_times(distances) + latencies
        )
        media = nsectors * rotation / spt
        self._head_cylinder = int(cyl_end[-1])
        self._last_media_end = int(ends[-1])
        return self.spec.command_overhead + positioning + media
