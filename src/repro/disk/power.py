"""Disk power model and spin-down policy evaluation.

One of the motivations for characterizing idleness (and a follow-on
thread of the authors' work) is power management: long idle stretches
make spinning the drive down worthwhile. This module prices a busy/idle
timeline under a drive power profile and evaluates fixed-timeout
spin-down policies — energy saved versus latency added — including the
classical break-even analysis.

Model: after ``timeout`` seconds of idleness the drive spins down to
standby; the next request triggers an on-demand spin-up that delays it
by ``spinup_seconds`` and costs ``spinup_energy``. Idle intervals
shorter than the timeout never spin down.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.disk.timeline import BusyIdleTimeline
from repro.errors import DiskModelError


@dataclass(frozen=True)
class PowerProfile:
    """Electrical profile of one drive.

    Attributes
    ----------
    active_watts:
        Power while seeking/transferring.
    idle_watts:
        Power while spinning but idle.
    standby_watts:
        Power spun down.
    spinup_seconds:
        Time to return to speed from standby.
    spinup_watts:
        Power draw during spin-up.
    """

    active_watts: float = 11.5
    idle_watts: float = 7.5
    standby_watts: float = 1.0
    spinup_seconds: float = 6.0
    spinup_watts: float = 20.0

    def __post_init__(self) -> None:
        if min(self.active_watts, self.idle_watts, self.standby_watts,
               self.spinup_watts) < 0:
            raise DiskModelError("power figures must be >= 0")
        if self.standby_watts > self.idle_watts:
            raise DiskModelError("standby power must not exceed idle power")
        if self.spinup_seconds < 0:
            raise DiskModelError(
                f"spinup_seconds must be >= 0, got {self.spinup_seconds!r}"
            )

    @property
    def spinup_energy(self) -> float:
        """Energy of one spin-up, joules."""
        return self.spinup_watts * self.spinup_seconds

    def break_even_seconds(self) -> float:
        """The idle duration at which spinning down pays for itself.

        Staying idle for ``t`` costs ``idle_watts * t``; spinning down
        costs ``standby_watts * t + spinup_energy``. Equality at
        ``spinup_energy / (idle_watts - standby_watts)`` — the classical
        threshold a 2-competitive fixed timeout is set to.
        """
        saving_rate = self.idle_watts - self.standby_watts
        if saving_rate <= 0:
            return float("inf")
        return self.spinup_energy / saving_rate


@dataclass(frozen=True)
class EnergyReport:
    """Energy and latency accounting of one policy on one timeline.

    Attributes
    ----------
    total_joules:
        Energy under the evaluated policy.
    baseline_joules:
        Energy with spin-down disabled (active + idle only).
    savings_fraction:
        ``1 - total / baseline`` (negative when the policy loses).
    spin_downs:
        Number of spin-down events.
    delayed_busy_periods:
        Busy periods whose first request waited for a spin-up.
    added_latency_seconds:
        Total spin-up delay imposed on foreground work.
    active_joules, idle_joules, standby_joules, spinup_joules:
        The energy breakdown.
    """

    total_joules: float
    baseline_joules: float
    savings_fraction: float
    spin_downs: int
    delayed_busy_periods: int
    added_latency_seconds: float
    active_joules: float
    idle_joules: float
    standby_joules: float
    spinup_joules: float


def baseline_energy(timeline: BusyIdleTimeline, power: PowerProfile) -> float:
    """Energy with the drive always spinning: active busy + idle otherwise."""
    return (
        power.active_watts * timeline.total_busy
        + power.idle_watts * timeline.total_idle
    )


def evaluate_spin_down(
    timeline: BusyIdleTimeline, power: PowerProfile, timeout: float
) -> EnergyReport:
    """Price a fixed-timeout spin-down policy on a timeline.

    ``timeout = inf`` reduces to the always-on baseline. The model
    assumes the spin-up completes within the triggering idle-to-busy
    transition (its latency is *reported*, not fed back into the
    timeline — the standard first-order evaluation).
    """
    if timeout < 0:
        raise DiskModelError(f"timeout must be >= 0, got {timeout!r}")
    idle_intervals = timeline.idle_periods()
    active = power.active_watts * timeline.total_busy

    idle_energy = 0.0
    standby_energy = 0.0
    spinup_energy = 0.0
    spin_downs = 0
    delayed = 0
    added_latency = 0.0
    for interval in idle_intervals:
        if np.isinf(timeout) or interval <= timeout:
            idle_energy += power.idle_watts * interval
            continue
        spin_downs += 1
        idle_energy += power.idle_watts * timeout
        standby_energy += power.standby_watts * (interval - timeout)
        spinup_energy += power.spinup_energy
        delayed += 1
        added_latency += power.spinup_seconds

    total = active + idle_energy + standby_energy + spinup_energy
    baseline = baseline_energy(timeline, power)
    savings = 1.0 - total / baseline if baseline > 0 else float("nan")
    return EnergyReport(
        total_joules=total,
        baseline_joules=baseline,
        savings_fraction=savings,
        spin_downs=spin_downs,
        delayed_busy_periods=delayed,
        added_latency_seconds=added_latency,
        active_joules=active,
        idle_joules=idle_energy,
        standby_joules=standby_energy,
        spinup_joules=spinup_energy,
    )


def sweep_timeouts(
    timeline: BusyIdleTimeline, power: PowerProfile, timeouts
) -> dict:
    """Evaluate several timeouts at once; returns ``{timeout: report}``."""
    reports = {}
    for timeout in timeouts:
        reports[float(timeout)] = evaluate_spin_down(timeline, power, float(timeout))
    return reports
