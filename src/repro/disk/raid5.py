"""RAID-5: rotating parity and its write amplification.

The third classical layout the paper's drives served under. Reads map
like striping (skipping the parity chunk); writes pay the parity tax:

* a **full-stripe** write (all data chunks of a row, whole chunks)
  computes parity from the new data — data writes plus one parity
  write, no reads;
* a **partial** write does read-modify-write — read the old data and
  old parity, write new data and new parity — the classical
  "small-write problem" that turns one logical write into four disk
  I/Os.

The resulting member traces expose how much *extra* disk-level write
traffic parity creates (:func:`write_amplification`), one of the
reasons disk-level mixes lean even further toward writes than host
caching alone explains.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import DiskModelError
from repro.traces.millisecond import RequestTrace


class Raid5Array:
    """Left-symmetric RAID-5 over ``n_members`` drives.

    Parameters
    ----------
    n_members:
        Member count (>= 3).
    chunk_sectors:
        Stripe unit in sectors.
    member_capacity_sectors:
        Per-member capacity (a whole number of chunks). Usable logical
        capacity is ``(n_members - 1) * member_capacity_sectors``.
    """

    def __init__(
        self, n_members: int, chunk_sectors: int, member_capacity_sectors: int
    ) -> None:
        if n_members < 3:
            raise DiskModelError(f"RAID-5 needs >= 3 members, got {n_members!r}")
        if chunk_sectors <= 0:
            raise DiskModelError(f"chunk_sectors must be > 0, got {chunk_sectors!r}")
        if member_capacity_sectors <= 0 or member_capacity_sectors % chunk_sectors:
            raise DiskModelError(
                "member capacity must be a positive whole number of chunks"
            )
        self.n_members = int(n_members)
        self.chunk_sectors = int(chunk_sectors)
        self.member_capacity_sectors = int(member_capacity_sectors)

    @property
    def logical_capacity_sectors(self) -> int:
        """Usable sectors (capacity minus one member's worth of parity)."""
        return (self.n_members - 1) * self.member_capacity_sectors

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------

    def parity_member(self, row: int) -> int:
        """Member holding the parity chunk of stripe ``row``
        (left-symmetric rotation)."""
        return (self.n_members - 1 - (row % self.n_members)) % self.n_members

    def data_member(self, row: int, data_index: int) -> int:
        """Member holding data chunk ``data_index`` (0-based within the
        row) of stripe ``row``."""
        if not 0 <= data_index < self.n_members - 1:
            raise DiskModelError(
                f"data_index must be in [0, {self.n_members - 2}], got {data_index!r}"
            )
        return (self.parity_member(row) + 1 + data_index) % self.n_members

    def locate(self, lba: int) -> Tuple[int, int, int]:
        """Map a logical sector to ``(row, member, member_lba)``."""
        if lba < 0 or lba >= self.logical_capacity_sectors:
            raise DiskModelError(
                f"logical LBA {lba!r} outside capacity {self.logical_capacity_sectors}"
            )
        chunk = lba // self.chunk_sectors
        offset = lba % self.chunk_sectors
        row = chunk // (self.n_members - 1)
        data_index = chunk % (self.n_members - 1)
        member = self.data_member(row, data_index)
        return row, member, row * self.chunk_sectors + offset

    # ------------------------------------------------------------------
    # Trace projection
    # ------------------------------------------------------------------

    def split_trace(self, trace: RequestTrace) -> List[RequestTrace]:
        """Project a logical trace onto the members, parity I/O included.

        All sub-requests of one logical request share its arrival time.
        Partial-row writes use read-modify-write (old data + old parity
        reads, new data + new parity writes over the written span of the
        chunk); rows written completely use parity reconstruction (data
        + parity writes only).
        """
        buckets = [
            {"times": [], "lbas": [], "nsectors": [], "is_write": []}
            for _ in range(self.n_members)
        ]

        def emit(member: int, time: float, lba: int, n: int, write: bool) -> None:
            b = buckets[member]
            b["times"].append(time)
            b["lbas"].append(lba)
            b["nsectors"].append(n)
            b["is_write"].append(write)

        data_per_row = (self.n_members - 1) * self.chunk_sectors
        for i in range(len(trace)):
            time = float(trace.times[i])
            lba = int(trace.lbas[i])
            remaining = int(trace.nsectors[i])
            write = bool(trace.is_write[i])
            if lba + remaining > self.logical_capacity_sectors:
                raise DiskModelError(
                    f"request [{lba}, {lba + remaining}) exceeds usable capacity "
                    f"{self.logical_capacity_sectors}"
                )
            # Chunk extents of this request, grouped by stripe row:
            # row -> list of (member, member_lba, length, offset_in_chunk).
            rows: Dict[int, List[Tuple[int, int, int, int]]] = {}
            row_written: Dict[int, int] = {}
            while remaining > 0:
                in_chunk = min(remaining, self.chunk_sectors - (lba % self.chunk_sectors))
                row, member, member_lba = self.locate(lba)
                rows.setdefault(row, []).append(
                    (member, member_lba, in_chunk, lba % self.chunk_sectors)
                )
                row_written[row] = row_written.get(row, 0) + in_chunk
                lba += in_chunk
                remaining -= in_chunk

            for row, extents in rows.items():
                if not write:
                    for member, member_lba, n, _ in extents:
                        emit(member, time, member_lba, n, False)
                    continue
                parity = self.parity_member(row)
                parity_base = row * self.chunk_sectors
                full_stripe = row_written[row] == data_per_row
                if full_stripe:
                    for member, member_lba, n, _ in extents:
                        emit(member, time, member_lba, n, True)
                    emit(parity, time, parity_base, self.chunk_sectors, True)
                else:
                    for member, member_lba, n, _ in extents:
                        emit(member, time, member_lba, n, False)  # old data
                        emit(member, time, member_lba, n, True)   # new data
                    # Parity sectors touched = union of the written
                    # per-chunk offset intervals (XOR is positional).
                    intervals = sorted((e[3], e[3] + e[2]) for e in extents)
                    merged = [list(intervals[0])]
                    for lo, hi in intervals[1:]:
                        if lo <= merged[-1][1]:
                            merged[-1][1] = max(merged[-1][1], hi)
                        else:
                            merged.append([lo, hi])
                    for lo, hi in merged:
                        emit(parity, time, parity_base + lo, hi - lo, False)
                        emit(parity, time, parity_base + lo, hi - lo, True)

        return [
            RequestTrace(
                times=b["times"], lbas=b["lbas"], nsectors=b["nsectors"],
                is_write=b["is_write"], span=trace.span,
                label=f"{trace.label}@r5m{m}",
            )
            for m, b in enumerate(buckets)
        ]


def write_amplification(
    logical: RequestTrace, member_traces: List[RequestTrace]
) -> float:
    """Disk-level written bytes divided by logically written bytes.

    1.0 means parity-free; full-stripe writes approach
    ``n / (n - 1)``; small partial writes approach 2.0 in written bytes
    (new data + equal-size parity), with the induced reads on top of
    that (not counted here — they show in the members' read traffic).
    NaN when the logical trace wrote nothing.
    """
    logical_written = float(logical.writes().total_bytes)
    if logical_written == 0:
        return float("nan")
    disk_written = sum(float(m.writes().total_bytes) for m in member_traces)
    return disk_written / logical_written
