"""Drive-level fault injection: the degraded-mode substrate.

The simulator's drive is otherwise perfect — every request succeeds on
its first media access. Real enterprise drives of the paper's era are
not: they hit latent sector errors laid down long before the workload
arrives, suffer transient media errors under vibration and thermal
stress, retry with escalating recovery steps, reassign unrecoverable
sectors to a spare area near the spindle, and scrub media during idle
time to find latent errors before the host does. All of that shapes the
*tail* of the response-time distribution, which is exactly the region
the paper's burstiness and idleness findings bear on.

:class:`FaultProfile` is the frozen recipe (how broken is the drive);
:class:`FaultModel` is the stateful instance the :class:`~repro.disk.drive.DiskDrive`
consults on every media access. Everything is driven by
``numpy.random.SeedSequence``-derived generators split into a *layout*
stream (where the bad regions are — fixed for the model's lifetime) and
an *access* stream (transient draws and retry outcomes — rewound by
:meth:`FaultModel.reset` so repeated runs are bit-identical), which also
makes fault injection independent of how jobs are spread over runner
workers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple

import numpy as np

from repro.disk.geometry import DiskGeometry
from repro.errors import FaultInjectionError
from repro.units import ms

#: Salt mixed into the SeedSequence entropy so fault streams never collide
#: with the drive's rotational-latency RNG for the same seed.
_FAULT_STREAM_SALT = 0x0FA117


@dataclass(frozen=True)
class FaultProfile:
    """Recipe for a drive's fault population and recovery behaviour.

    Attributes
    ----------
    name:
        Label carried into job labels and reports.
    latent_region_count:
        Number of LBA regions holding latent sector errors. A request
        touching one triggers the retry ladder; on recovery the region is
        reassigned to the spare area (see :class:`FaultModel`).
    transient_error_prob:
        Per-media-access probability of a transient error (recoverable by
        retry, no reassignment).
    slow_region_count:
        Number of degraded-but-readable regions whose media accesses are
        stretched by ``slow_factor`` (weak heads, adjacent-track noise).
    region_sectors:
        Granularity of the fault map in sectors.
    slow_factor:
        Service-time multiplier inside slow regions (``>= 1``).
    max_retries:
        Bounded retry attempts before a request is declared failed.
    retry_penalty:
        Service-time cost of the first retry, seconds; attempt ``i``
        costs ``retry_penalty * backoff_factor**(i-1)`` (the escalating
        recovery steps of a real drive's error-recovery table).
    backoff_factor:
        Exponential escalation of per-attempt cost (``>= 1``).
    retry_success_prob:
        Probability each retry attempt succeeds.
    seed:
        Optional fixed entropy for the fault streams. ``None`` (default)
        derives them from the simulator seed, so distinct jobs see
        distinct fault layouts while identical (seeded) runs stay
        bit-identical.
    """

    name: str = "custom"
    latent_region_count: int = 0
    transient_error_prob: float = 0.0
    slow_region_count: int = 0
    region_sectors: int = 4096
    slow_factor: float = 3.0
    max_retries: int = 4
    retry_penalty: float = ms(5.0)
    backoff_factor: float = 2.0
    retry_success_prob: float = 0.7
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.region_sectors <= 0:
            raise FaultInjectionError(
                f"region_sectors must be > 0, got {self.region_sectors!r}"
            )
        if self.latent_region_count < 0 or self.slow_region_count < 0:
            raise FaultInjectionError("region counts must be >= 0")
        if not 0.0 <= self.transient_error_prob <= 1.0:
            raise FaultInjectionError(
                f"transient_error_prob must be in [0, 1], got "
                f"{self.transient_error_prob!r}"
            )
        if not 0.0 <= self.retry_success_prob <= 1.0:
            raise FaultInjectionError(
                f"retry_success_prob must be in [0, 1], got "
                f"{self.retry_success_prob!r}"
            )
        if self.slow_factor < 1.0:
            raise FaultInjectionError(
                f"slow_factor must be >= 1, got {self.slow_factor!r}"
            )
        if self.max_retries < 1:
            raise FaultInjectionError(
                f"max_retries must be >= 1, got {self.max_retries!r}"
            )
        if self.retry_penalty < 0:
            raise FaultInjectionError(
                f"retry_penalty must be >= 0, got {self.retry_penalty!r}"
            )
        if self.backoff_factor < 1.0:
            raise FaultInjectionError(
                f"backoff_factor must be >= 1, got {self.backoff_factor!r}"
            )

    @property
    def active(self) -> bool:
        """Whether this profile can produce any fault at all."""
        return (
            self.latent_region_count > 0
            or self.slow_region_count > 0
            or self.transient_error_prob > 0.0
        )


def light_faults() -> FaultProfile:
    """A healthy-but-aging drive: a few latent errors, rare transients."""
    return FaultProfile(
        name="light",
        latent_region_count=4,
        transient_error_prob=1e-4,
        slow_region_count=2,
        slow_factor=2.0,
    )


def moderate_faults() -> FaultProfile:
    """A drive the fleet-anomaly analysis would start flagging."""
    return FaultProfile(
        name="moderate",
        latent_region_count=16,
        transient_error_prob=2e-3,
        slow_region_count=8,
        slow_factor=3.0,
    )


def severe_faults() -> FaultProfile:
    """A drive on its way out: dense latent errors, frequent transients,
    large degraded areas. Expect a visibly inflated latency tail."""
    return FaultProfile(
        name="severe",
        latent_region_count=48,
        transient_error_prob=2e-2,
        slow_region_count=24,
        slow_factor=4.0,
        retry_success_prob=0.6,
    )


_PROFILES = {
    "light": light_faults,
    "moderate": moderate_faults,
    "severe": severe_faults,
}


def available_fault_profiles() -> Dict[str, FaultProfile]:
    """The built-in fault profiles by name."""
    return {name: factory() for name, factory in _PROFILES.items()}


def get_fault_profile(name: str) -> FaultProfile:
    """Look up a built-in fault profile by name."""
    try:
        return _PROFILES[name]()
    except KeyError:
        raise FaultInjectionError(
            f"unknown fault profile {name!r}; available: {sorted(_PROFILES)}"
        ) from None


@dataclass(frozen=True)
class FaultEvent:
    """One request's encounter with the fault model.

    ``penalty`` is the total extra service time attributable to the
    fault (retries plus slow-region stretch), seconds. ``index`` is the
    request's position in the trace, filled in by the simulator
    (``-1`` while the event is still drive-local).
    """

    kind: str  # 'latent' | 'transient' | 'slow'
    lba: int
    region: int
    retries: int
    penalty: float
    recovered: bool
    reassigned: bool
    index: int = -1


class FaultModel:
    """The stateful fault map one drive consults on every media access.

    Parameters
    ----------
    profile:
        The :class:`FaultProfile` recipe.
    geometry:
        The drive's :class:`~repro.disk.geometry.DiskGeometry`; region
        layout and the spare-area placement are derived from it.
    seed:
        Entropy for the fault streams when ``profile.seed`` is ``None``
        (the simulator passes its own seed here).

    The LBA space is divided into ``profile.region_sectors``-sized
    regions. The layout stream places the latent and slow regions once,
    at construction; the access stream drives transient draws and retry
    outcomes and is rewound by :meth:`reset` so repeated runs of the same
    model are bit-identical. Reassignment relocates a recovered latent
    region to a spare slot on the innermost cylinders (via
    :meth:`DiskGeometry.first_lba_of_cylinder`), so every later access to
    that region seeks to the spare area — degraded-mode geometry, not
    just a time penalty.
    """

    def __init__(
        self,
        profile: FaultProfile,
        geometry: DiskGeometry,
        seed: Optional[int] = None,
    ) -> None:
        self.profile = profile
        self.geometry = geometry
        capacity = geometry.capacity_sectors
        self.n_regions = capacity // profile.region_sectors
        if self.n_regions < 1:
            raise FaultInjectionError(
                f"region_sectors {profile.region_sectors} exceeds drive "
                f"capacity {capacity}"
            )
        # The tail of the region index space doubles as the spare area
        # (innermost cylinders); keep injected faults out of it.
        drawable = self.n_regions - profile.latent_region_count
        n_faulty = profile.latent_region_count + profile.slow_region_count
        if n_faulty > max(drawable, 0):
            raise FaultInjectionError(
                f"profile {profile.name!r} wants {n_faulty} faulty regions "
                f"but the drive only has {self.n_regions} regions of "
                f"{profile.region_sectors} sectors"
            )
        entropy = profile.seed if profile.seed is not None else (seed or 0)
        root = np.random.SeedSequence(
            [_FAULT_STREAM_SALT, int(entropy) & 0xFFFFFFFFFFFFFFFF]
        )
        layout_ss, self._access_ss = root.spawn(2)
        layout_rng = np.random.default_rng(layout_ss)
        if n_faulty:
            chosen = layout_rng.choice(drawable, size=n_faulty, replace=False)
        else:
            chosen = np.zeros(0, dtype=np.int64)
        self._latent = frozenset(
            int(r) for r in chosen[: profile.latent_region_count]
        )
        self._slow = frozenset(
            int(r) for r in chosen[profile.latent_region_count:]
        )
        self._repairs: Dict[int, float] = {}
        self._rng = np.random.default_rng(self._access_ss)
        self._reassigned: Dict[int, int] = {}
        self._next_spare = 0
        # Retry ladder shared with the suite runner's retry path
        # (repro.core.backoff); imported lazily because repro.core's
        # package init imports this module back. Repeated-multiplication
        # schedule, bit-identical to the historical inline loop.
        from repro.core.backoff import backoff_delays

        self._retry_costs = backoff_delays(
            profile.retry_penalty, profile.backoff_factor, profile.max_retries
        )
        #: Optional :class:`~repro.obs.Observer`; attached by the
        #: simulator. Pure accounting — fault decisions and RNG draws are
        #: identical with or without it (asserted by tests).
        self.obs = None

    def reset(self) -> None:
        """Rewind per-run state: the access RNG and the reassignment map.

        Layout and any scheduled repairs survive — they describe the
        drive and the scrub plan, not one run's history.
        """
        self._rng = np.random.default_rng(self._access_ss)
        self._reassigned = {}
        self._next_spare = 0

    # ------------------------------------------------------------------
    # Layout queries
    # ------------------------------------------------------------------

    def latent_regions(self) -> Tuple[int, ...]:
        """The latent-error region indices, sorted."""
        return tuple(sorted(self._latent))

    def slow_regions(self) -> Tuple[int, ...]:
        """The slow/degraded region indices, sorted."""
        return tuple(sorted(self._slow))

    def unrepaired_latent_regions(self) -> Tuple[int, ...]:
        """Latent regions with no scheduled repair — the scrub worklist."""
        return tuple(sorted(self._latent - set(self._repairs)))

    def region_of(self, lba: int) -> int:
        """The fault-map region containing ``lba``."""
        return int(lba) // self.profile.region_sectors

    # ------------------------------------------------------------------
    # Scrub integration
    # ------------------------------------------------------------------

    def schedule_repairs(self, repair_times: Mapping[int, float]) -> None:
        """Declare latent regions repaired from the given times onward.

        This is how a media scrub takes effect: accesses at ``now >=
        repair_times[region]`` no longer trigger the region's latent
        error. Unknown regions are rejected rather than silently kept.
        """
        for region, when in repair_times.items():
            if region not in self._latent:
                raise FaultInjectionError(
                    f"region {region!r} is not a latent-error region"
                )
            if when < 0:
                raise FaultInjectionError(
                    f"repair time must be >= 0, got {when!r}"
                )
        self._repairs.update(
            {int(r): float(t) for r, t in repair_times.items()}
        )

    def clear_repairs(self) -> None:
        """Forget every scheduled repair (back to the unscrubbed drive)."""
        self._repairs = {}

    # ------------------------------------------------------------------
    # The per-access hook the drive calls
    # ------------------------------------------------------------------

    def effective_lba(self, lba: int, nsectors: int = 1) -> int:
        """Where the heads actually go for ``lba``: the original address,
        or its spare-area relocation if the region was reassigned."""
        if not self._reassigned:
            # Nothing relocated yet — skip the region arithmetic on the
            # per-access hot path (most runs never reassign at all).
            return lba
        slot = self._reassigned.get(int(lba) // self.profile.region_sectors)
        if slot is None:
            return lba
        spare_cylinder = self.geometry.total_cylinders - 1 - slot
        base = self.geometry.first_lba_of_cylinder(spare_cylinder)
        offset = int(lba) % self.profile.region_sectors
        ceiling = self.geometry.capacity_sectors - int(nsectors)
        return min(base + offset, max(ceiling, 0))

    def _regions_touched(self, lba: int, nsectors: int) -> Iterable[int]:
        first = int(lba) // self.profile.region_sectors
        last = (int(lba) + int(nsectors) - 1) // self.profile.region_sectors
        return range(first, last + 1)

    def _repaired(self, region: int, now: float) -> bool:
        when = self._repairs.get(region)
        return when is not None and now >= when

    def _reassign(self, region: int) -> bool:
        if self._next_spare >= self.profile.latent_region_count:
            return False  # spare area exhausted (cannot happen in practice)
        self._reassigned[region] = self._next_spare
        self._next_spare += 1
        return True

    def on_media_access(
        self, lba: int, nsectors: int, base_service: float, now: float
    ) -> Tuple[float, Optional[FaultEvent]]:
        """Apply fault semantics to one media access.

        Returns ``(service_seconds, event)`` where ``service_seconds``
        replaces the healthy service time and ``event`` is ``None`` for
        an untouched access.
        """
        profile = self.profile
        service = float(base_service)
        touched = list(self._regions_touched(lba, nsectors))

        slow_hit = next((r for r in touched if r in self._slow), None)
        if slow_hit is not None:
            service *= profile.slow_factor

        fault_region = next(
            (
                r
                for r in touched
                if r in self._latent
                and r not in self._reassigned
                and not self._repaired(r, now)
            ),
            None,
        )
        kind: Optional[str] = None
        if fault_region is not None:
            kind = "latent"
        elif (
            profile.transient_error_prob > 0.0
            and self._rng.random() < profile.transient_error_prob
        ):
            kind = "transient"
            fault_region = touched[0]

        obs = self.obs
        observing = obs is not None and obs.enabled
        if kind is None:
            if slow_hit is None:
                return service, None
            if observing:
                obs.metrics.counter("faults.slow_hits").inc()
                obs.emit(
                    "slow_region", now, "faults",
                    lba=int(lba), region=int(slow_hit),
                    penalty=service - float(base_service),
                )
            return service, FaultEvent(
                kind="slow",
                lba=int(lba),
                region=int(slow_hit),
                retries=0,
                penalty=service - float(base_service),
                recovered=True,
                reassigned=False,
            )

        retries = 0
        recovered = False
        for cost in self._retry_costs:
            retries += 1
            service += cost
            if self._rng.random() < profile.retry_success_prob:
                recovered = True
                break

        reassigned = False
        if kind == "latent" and recovered:
            reassigned = self._reassign(fault_region)

        if observing:
            obs.metrics.counter("faults.retries").inc(retries)
            if slow_hit is not None:
                obs.metrics.counter("faults.slow_hits").inc()
            obs.metrics.counter(
                "faults.recovered" if recovered else "faults.hard_failures"
            ).inc()
            obs.emit(
                "retry", now, "faults",
                fault_kind=kind, lba=int(lba), region=int(fault_region),
                retries=retries, recovered=recovered,
                penalty=service - float(base_service),
            )
            if reassigned:
                obs.metrics.counter("faults.reassignments").inc()
                obs.emit(
                    "reassignment", now, "faults",
                    region=int(fault_region),
                    spare_slot=self._reassigned[fault_region],
                )

        return service, FaultEvent(
            kind=kind,
            lba=int(lba),
            region=int(fault_region),
            retries=retries,
            penalty=service - float(base_service),
            recovered=recovered,
            reassigned=reassigned,
        )

    def __repr__(self) -> str:
        return (
            f"FaultModel(profile={self.profile.name!r}, "
            f"regions={self.n_regions}, latent={len(self._latent)}, "
            f"slow={len(self._slow)}, reassigned={len(self._reassigned)}, "
            f"repairs={len(self._repairs)})"
        )
