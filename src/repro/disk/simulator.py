"""Event-driven trace replay through the drive model.

:class:`DiskSimulator` replays a :class:`~repro.traces.RequestTrace`
against a :class:`~repro.disk.drive.DiskDrive` as a single-server queue
with a pluggable scheduling discipline, producing per-request timings and
the busy/idle timeline. This is the substitute for the measurement
infrastructure the paper had on real drives: instead of observing busy
and idle on hardware, we observe it on the model.

The replay engine has several executions of the same queueing model,
picked per run so heavy traces replay as fast as the discipline allows:

* a **vectorized FCFS path** — with FCFS the serve order *is* the arrival
  order, so when the drive's cache is disabled the whole run collapses to
  one batched service-time computation plus the classic
  ``finish[i] = max(arrival[i], finish[i-1]) + service[i]`` recurrence,
  evaluated with ``np.maximum.accumulate`` over cumulative sums — no
  Python loop at all;
* the **columnar engines** (:mod:`repro.disk.columnar`) — FCFS with the
  cache enabled, SSTF with full visibility, and NCQ-windowed SSTF all
  replay the structured-array request representation
  (:data:`~repro.traces.millisecond.REQUEST_DTYPE`, built once per
  replay) with the drive's decision logic inlined: geometry and media
  times precomputed in vectorized passes, seek-curve constants hoisted,
  rotational-latency draws block-buffered from the drive's own RNG, and
  the SSTF nearest-neighbor decision served by the shared
  :func:`~repro.disk.scheduler.pick_from_sorted` bisect kernel. They are
  selected only for a bare, unobserved drive (no faults, no tier, no
  enabled observer) and are bit-identical to the reference loop;
* a **sequential FCFS path** — with caching enabled, service times depend
  on the clock (write-buffer drain), so the drive is stepped request by
  request, but with no queue or scheduler machinery at all (bit-identical
  to the event loop); it remains the FCFS engine when an observer, fault
  model or tier needs the per-access hooks;
* a **sorted SSTF path** — the scalar twin of the columnar SSTF engine
  (same cylinder-sorted queue and bisect kernel, drive stepped through
  its real methods) for SSTF runs that need those hooks;
* the **event loop** — the general path for seek-aware disciplines and
  NCQ windows: the queue is kept in arrival order and windowed runs
  slice the oldest ``queue_depth`` entries in O(queue_depth).

``fast_path=False`` forces every run through the reference event loop;
the equivalence of the fast paths is asserted against it in the test
suite.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.disk.columnar import (
    run_fcfs_columnar,
    run_sstf_columnar,
    run_sstf_windowed_columnar,
)
from repro.disk.drive import DiskDrive, DriveSpec
from repro.disk.faults import FaultEvent, FaultModel, FaultProfile
from repro.disk.scheduler import (
    FcfsScheduler,
    Scheduler,
    SstfScheduler,
    make_scheduler,
    pick_from_sorted,
)
from repro.disk.timeline import BusyIdleTimeline
from repro.errors import SimulationError
from repro.obs import Observer
from repro.stats.moments import describe, SampleDescription
from repro.tier import TierConfig, TieredDevice
from repro.traces.millisecond import RequestTrace, build_request_columns


class SimulationResult:
    """Per-request timings and derived views of one simulation run.

    All arrays are aligned with the input trace's request order.
    ``fault_events`` is empty for a healthy run; with a fault model
    attached it holds one :class:`~repro.disk.faults.FaultEvent` per
    degraded media access, and requests whose recovery failed are marked
    in the ``failed`` mask instead of crashing the run.
    """

    def __init__(
        self,
        trace: RequestTrace,
        start_times: np.ndarray,
        service_times: np.ndarray,
        drive_name: str,
        scheduler_name: str,
        fault_events: Sequence[FaultEvent] = (),
        tier_hits: Optional[np.ndarray] = None,
        tier_summary: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.trace = trace
        self.start_times = start_times
        self.service_times = service_times
        self.drive_name = drive_name
        self.scheduler_name = scheduler_name
        self.finish_times = start_times + service_times
        span = float(max(trace.span, self.finish_times.max())) if len(trace) else trace.span
        self.timeline = BusyIdleTimeline(
            list(zip(self.start_times, self.finish_times)), span=span
        )
        self.fault_events: Tuple[FaultEvent, ...] = tuple(fault_events)
        failed = np.zeros(len(trace), dtype=bool)
        for event in self.fault_events:
            if not event.recovered:
                failed[event.index] = True
        failed.setflags(write=False)
        self.failed = failed
        # Tier views: None on untiered runs (so a tier-less result is
        # indistinguishable from one produced before the tier existed).
        if tier_hits is not None:
            tier_hits = np.asarray(tier_hits, dtype=bool)
            tier_hits.setflags(write=False)
        self.tier_hits = tier_hits
        self.tier_summary = tier_summary

    @property
    def tier_hit_rate(self) -> float:
        """Fraction of requests served at flash speed (nan if untiered)."""
        if self.tier_hits is None or not len(self.tier_hits):
            return float("nan")
        return float(self.tier_hits.mean())

    @property
    def n_failed(self) -> int:
        """Requests whose bounded retries all failed (hard failures)."""
        return int(self.failed.sum())

    @property
    def n_faulted(self) -> int:
        """Requests that hit at least one fault (including slow regions)."""
        return len({event.index for event in self.fault_events})

    @property
    def completed_requests(self) -> int:
        """Requests served successfully; with ``n_failed`` this conserves
        the submitted count: ``completed_requests + n_failed == len(trace)``."""
        return len(self.trace) - self.n_failed

    @property
    def fault_penalty_seconds(self) -> float:
        """Total service time added by faults across the run, seconds."""
        return float(sum(event.penalty for event in self.fault_events))

    def fault_summary(self) -> Dict[str, Any]:
        """Compact degraded-mode accounting for reports and JSON."""
        by_kind: Dict[str, int] = {}
        for event in self.fault_events:
            by_kind[event.kind] = by_kind.get(event.kind, 0) + 1
        return {
            "n_requests": len(self.trace),
            "n_faulted": self.n_faulted,
            "n_failed": self.n_failed,
            "completed_requests": self.completed_requests,
            "n_reassigned": sum(1 for e in self.fault_events if e.reassigned),
            "fault_penalty_seconds": self.fault_penalty_seconds,
            "events_by_kind": by_kind,
        }

    @property
    def wait_times(self) -> np.ndarray:
        """Queueing delay per request: service start minus arrival."""
        return self.start_times - self.trace.times

    @property
    def response_times(self) -> np.ndarray:
        """End-to-end latency per request: completion minus arrival."""
        return self.finish_times - self.trace.times

    @property
    def utilization(self) -> float:
        """Busy fraction of the observation window."""
        return self.timeline.utilization

    def describe_response(self) -> SampleDescription:
        """Headline statistics of the response-time distribution."""
        return describe(self.response_times)

    def describe_service(self) -> SampleDescription:
        """Headline statistics of the service-time distribution."""
        return describe(self.service_times)

    def __repr__(self) -> str:
        return (
            f"SimulationResult(trace={self.trace.label!r}, n={len(self.trace)}, "
            f"drive={self.drive_name!r}, scheduler={self.scheduler_name!r}, "
            f"utilization={self.utilization:.4f})"
        )


class DiskSimulator:
    """Replay traces through a drive with a chosen queueing discipline.

    Parameters
    ----------
    drive:
        A :class:`DriveSpec` (a fresh :class:`DiskDrive` is built per run,
        keeping runs independent and reproducible) or a ready
        :class:`DiskDrive` (reset before each run).
    scheduler:
        Discipline name (``'fcfs'``, ``'sstf'``, ``'scan'``) or a
        scheduler instance. A fresh instance is made per run for named
        disciplines so stateful schedulers (SCAN) do not leak state.
    remap_lbas:
        When true, request LBAs are folded into the drive's capacity with
        a modulo, letting traces generated for a larger address space
        replay on a smaller model. Off by default: out-of-range requests
        raise instead.
    seed:
        Seed for the drive's rotational-latency RNG.
    queue_depth:
        How many queued requests the scheduler can see (NCQ/TCQ depth).
        Only the ``queue_depth`` oldest pending requests are eligible at
        each decision, so seek-aware disciplines degrade gracefully
        toward FCFS as the window shrinks. ``None`` (default) = the
        scheduler sees everything.
    fast_path:
        When true (default) runs use the specialized FCFS/SSTF executions
        where applicable; when false every run goes through the reference
        event loop. Results agree — the flag exists for validation and
        perf-regression measurement.
    faults:
        ``None`` (default) replays against a perfect drive —
        bit-identical to a simulator without the parameter. A
        :class:`~repro.disk.faults.FaultProfile` builds a fresh
        :class:`~repro.disk.faults.FaultModel` against the drive's
        geometry (seeded from ``profile.seed`` or, when that is ``None``,
        this simulator's ``seed``); a ready ``FaultModel`` is attached
        directly and reset before each run (its layout and scheduled
        repairs survive, its access RNG rewinds), so repeated runs are
        bit-identical.
    tier:
        ``None`` (default) replays against the bare drive —
        bit-identical to a simulator without the parameter (asserted by
        property tests and the golden harness). A
        :class:`~repro.tier.TierConfig` materializes a fresh
        :class:`~repro.tier.TieredDevice` around the drive each run, so
        reads that hit flash complete at SSD latency, misses pay the
        drive (plus any synchronous dirty destage), and the result grows
        ``tier_hits`` / ``tier_summary``. A tier always replays through
        a per-request engine — the batched FCFS path cannot consult
        residency, so it falls back to the bit-identical sequential
        execution.
    obs:
        ``None`` (default) records nothing and is bit-identical to a
        simulator without the parameter. An
        :class:`~repro.obs.Observer` at level ``"metrics"`` fills its
        registry post-hoc from the result arrays (a few vectorized
        passes; designed for ≤8% overhead on the fast paths); at level
        ``"trace"`` the drive, cache and fault model additionally emit
        typed events into ``obs.events``. Observability never changes
        engine selection, RNG draws or results — every level is
        bit-identical to ``obs=None`` on every engine (asserted by
        property tests). One consequence: per-seek events need the
        per-request drive hook, so the batched FCFS engine records
        serve/queue-depth events (reconstructed post-hoc) but no seek
        events; pass ``fast_path=False`` (or enable the cache / a fault
        model / another discipline) to replay through a per-request
        engine and get them.
    """

    def __init__(
        self,
        drive: Union[DriveSpec, DiskDrive],
        scheduler: Union[str, Scheduler] = "fcfs",
        remap_lbas: bool = False,
        seed: int = 0,
        queue_depth: Optional[int] = None,
        fast_path: bool = True,
        faults: Optional[Union[FaultProfile, FaultModel]] = None,
        tier: Optional[TierConfig] = None,
        obs: Optional[Observer] = None,
    ) -> None:
        if queue_depth is not None and queue_depth < 1:
            raise SimulationError(
                f"queue_depth must be >= 1, got {queue_depth!r}"
            )
        if tier is not None and not isinstance(tier, TierConfig):
            raise SimulationError(
                f"tier must be a TierConfig or None, got {type(tier).__name__}"
            )
        if isinstance(drive, DiskDrive):
            self._spec: Optional[DriveSpec] = None
            self._drive: Optional[DiskDrive] = drive
        else:
            self._spec = drive
            self._drive = None
        self._scheduler_arg = scheduler
        self.remap_lbas = bool(remap_lbas)
        self.seed = int(seed)
        self.queue_depth = queue_depth
        self.fast_path = bool(fast_path)
        self.faults = faults
        self.tier = tier
        if obs is not None and not isinstance(obs, Observer):
            raise SimulationError(
                f"obs must be an Observer or None, got {type(obs).__name__}"
            )
        self.obs = obs

    def _fresh_drive(self) -> DiskDrive:
        if self._drive is not None:
            self._drive.reset()
            return self._drive
        assert self._spec is not None
        return DiskDrive(self._spec, seed=self.seed)

    def _attach_faults(self, drive: DiskDrive) -> None:
        if self.faults is None:
            return
        if isinstance(self.faults, FaultModel):
            model = self.faults
        else:
            model = FaultModel(self.faults, drive.geometry, seed=self.seed)
        model.reset()
        drive.faults = model

    def _fresh_scheduler(self) -> Scheduler:
        if isinstance(self._scheduler_arg, str):
            return make_scheduler(self._scheduler_arg)
        return self._scheduler_arg

    def run(self, trace: RequestTrace) -> SimulationResult:
        """Simulate one trace; returns the per-request timings.

        The simulation is non-preemptive single-server: at each decision
        point every request that has already arrived is eligible and the
        scheduler picks among them.
        """
        drive = self._fresh_drive()
        self._attach_faults(drive)
        scheduler = self._fresh_scheduler()
        n = len(trace)
        capacity = drive.geometry.capacity_sectors
        # A fresh TieredDevice per run keeps runs independent; the
        # engines drive it through the same surface as the bare drive.
        device = TieredDevice(drive, self.tier) if self.tier is not None else drive

        obs = self.obs
        observing = obs is not None and obs.enabled
        tracing = obs is not None and obs.tracing
        # Seek events need the per-request hook, so they are trace-only;
        # cache and fault accounting is cheap enough for metrics level.
        drive.obs = obs if tracing else None
        drive.cache.obs = obs if observing else None
        if drive.faults is not None:
            drive.faults.obs = obs if observing else None
        if device is not drive:
            device.obs = obs if tracing else None

        arrivals = trace.times
        lbas = trace.lbas
        if self.remap_lbas:
            sizes = np.minimum(trace.nsectors, capacity)
            lbas = lbas % np.maximum(capacity - sizes, 1)
        else:
            sizes = trace.nsectors
            ends = lbas + sizes
            if n and int(ends.max()) > capacity:
                raise SimulationError(
                    f"trace {trace.label!r} addresses beyond drive capacity "
                    f"{capacity}; generate against this drive or pass remap_lbas=True"
                )

        # The columnar engines inline the drive's decision logic over the
        # structured-array representation. They tally the cache counters
        # locally (recorded post-run), but per-access *events* — seeks,
        # write_absorbed — need the scalar hooks, so trace-level runs
        # stay on the scalar twins. Results are bit-identical either way.
        columnar_ok = (
            self.fast_path
            and drive.faults is None
            and device is drive
            and not tracing
        )

        def request_columns() -> np.ndarray:
            # Remapping rewrites LBAs/sizes, so only unremapped runs can
            # share the trace's memoized build.
            if lbas is trace.lbas and sizes is trace.nsectors:
                return trace.columns()
            return build_request_columns(arrivals, lbas, sizes, trace.is_write)

        if n == 0:
            start_times = np.zeros(0, dtype=np.float64)
            service_times = np.zeros(0, dtype=np.float64)
            fault_events: List[FaultEvent] = []
        elif self.fast_path and type(scheduler) is FcfsScheduler:
            # FCFS serves in arrival order regardless of queue depth, so
            # the queue machinery is pure overhead.
            cache = drive.spec.cache
            if (
                not cache.read_ahead
                and not cache.write_back
                and drive.faults is None
                and device is drive
            ):
                # The batched path cannot consult the per-access fault
                # hook or tier residency; either one falls back to the
                # bit-identical sequential execution.
                start_times, service_times = _run_fcfs_vectorized(
                    drive, arrivals, lbas, sizes
                )
                fault_events = []
            elif columnar_ok:
                start_times, service_times, cache_tally = run_fcfs_columnar(
                    drive, request_columns()
                )
                fault_events = []
                if observing:
                    _record_cache_tally(obs, cache_tally)
            else:
                start_times, service_times, fault_events = _run_fcfs_sequential(
                    device, arrivals, lbas, sizes, trace.is_write
                )
        elif type(scheduler) is SstfScheduler and columnar_ok:
            if self.queue_depth is None:
                start_times, service_times, cache_tally = run_sstf_columnar(
                    drive, request_columns()
                )
            else:
                start_times, service_times, cache_tally = run_sstf_windowed_columnar(
                    drive, request_columns(), self.queue_depth
                )
            fault_events = []
            if observing:
                _record_cache_tally(obs, cache_tally)
        elif (
            self.fast_path
            and type(scheduler) is SstfScheduler
            and self.queue_depth is None
        ):
            start_times, service_times, fault_events = _run_sstf_sorted(
                device, arrivals, lbas, sizes, trace.is_write
            )
        else:
            start_times, service_times, fault_events = _run_event_loop(
                device, scheduler, arrivals, lbas, sizes, trace.is_write,
                self.queue_depth,
            )

        drive_name = drive.spec.name
        tier_hits: Optional[np.ndarray] = None
        tier_summary: Optional[Dict[str, Any]] = None
        if device is not drive:
            # The hit log is in service order; service times are strictly
            # positive, so start times are strictly increasing in serve
            # order and a stable argsort recovers the permutation back to
            # trace order.
            tier_hits = np.zeros(n, dtype=bool)
            if n:
                order = np.argsort(start_times, kind="stable")
                tier_hits[order] = device.hit_array()
            tier_summary = device.summary()
        result = SimulationResult(
            trace=trace,
            start_times=start_times,
            service_times=service_times,
            drive_name=drive_name,
            scheduler_name=getattr(scheduler, "name", type(scheduler).__name__),
            fault_events=fault_events,
            tier_hits=tier_hits,
            tier_summary=tier_summary,
        )
        if observing:
            _record_metrics(obs, result, lbas, sizes)
        if tracing:
            _emit_serve_events(obs, trace, lbas, sizes, start_times, service_times)
            _emit_queue_depth_events(obs, arrivals, start_times)
            obs.emit(
                "run_end", result.timeline.span, "sim",
                n_requests=n,
                utilization=result.utilization,
                drive=drive_name,
                scheduler=result.scheduler_name,
            )
        return result


# ----------------------------------------------------------------------
# Execution strategies
# ----------------------------------------------------------------------

def _run_fcfs_vectorized(
    drive: DiskDrive,
    arrivals: np.ndarray,
    lbas: np.ndarray,
    sizes: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """FCFS with caching disabled: one batched drive call plus the
    start-time recurrence, no per-request Python at all.

    ``finish[i] = max(arrival[i], finish[i-1]) + service[i]`` unrolls to
    ``finish = cumsum(service) + running_max(arrival - exclusive_cumsum)``,
    which is two O(n) array passes.
    """
    service_times = drive.media_service_times(lbas, sizes)
    cumulative = np.cumsum(service_times)
    exclusive = np.concatenate(([0.0], cumulative[:-1]))
    slack = np.maximum.accumulate(arrivals - exclusive)
    # Clamp so float reassociation can never start a request before it
    # arrives (the event loop guarantees this exactly).
    start_times = np.maximum(exclusive + slack, arrivals)
    return start_times, service_times


def _run_fcfs_sequential(
    drive: Union[DiskDrive, TieredDevice],
    arrivals: np.ndarray,
    lbas: np.ndarray,
    sizes: np.ndarray,
    is_write: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, List[FaultEvent]]:
    """FCFS with caching enabled (or a fault model attached): service
    times depend on the clock (the write buffer drains in wall time), so
    step the drive request by request — but skip the queue and scheduler
    entirely. Bit-identical to the event loop: same ``service_time``
    calls, in the same order, at the same clocks."""
    n = arrivals.size
    start_times = np.empty(n, dtype=np.float64)
    service_times = np.empty(n, dtype=np.float64)
    arrival_list = arrivals.tolist()
    lba_list = lbas.tolist()
    size_list = sizes.tolist()
    write_list = is_write.tolist()
    service_time = drive.service_time
    record_faults = drive.faults is not None
    events: List[FaultEvent] = []
    clock = 0.0
    for i in range(n):
        arrival = arrival_list[i]
        if arrival > clock:
            clock = arrival
        service = service_time(lba_list[i], size_list[i], write_list[i], clock)
        if record_faults:
            event = drive.take_fault_event()
            if event is not None:
                events.append(replace(event, index=i))
        start_times[i] = clock
        service_times[i] = service
        clock += service
    return start_times, service_times, events


def _run_sstf_sorted(
    drive: Union[DiskDrive, TieredDevice],
    arrivals: np.ndarray,
    lbas: np.ndarray,
    sizes: np.ndarray,
    is_write: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, List[FaultEvent]]:
    """SSTF with full queue visibility over an incrementally maintained
    cylinder-sorted queue.

    The pending set lives in a list sorted by ``(cylinder, arrival)``;
    each decision bisects for the head position and compares the two
    boundary runs — O(log n) comparisons instead of the linear scan of
    :class:`SstfScheduler` — and picks exactly the entry the scan would:
    minimal ``(|cylinder - head|, arrival)``.
    """
    n = arrivals.size
    start_times = np.empty(n, dtype=np.float64)
    service_times = np.empty(n, dtype=np.float64)
    arrival_list = arrivals.tolist()
    lba_list = lbas.tolist()
    size_list = sizes.tolist()
    write_list = is_write.tolist()
    cylinder_of = drive.cylinder_of
    service_time = drive.service_time
    record_faults = drive.faults is not None
    events: List[FaultEvent] = []

    pending: List[Tuple[int, int]] = []  # (cylinder, arrival index), sorted
    next_arrival = 0
    clock = 0.0
    completed = 0

    while completed < n:
        if not pending:
            arrival = arrival_list[next_arrival]
            if arrival > clock:
                clock = arrival
        while next_arrival < n and arrival_list[next_arrival] <= clock:
            insort(pending, (cylinder_of(lba_list[next_arrival]), next_arrival))
            next_arrival += 1

        _, idx = pending.pop(pick_from_sorted(pending, drive.head_cylinder))

        service = service_time(lba_list[idx], size_list[idx], write_list[idx], clock)
        if record_faults:
            event = drive.take_fault_event()
            if event is not None:
                events.append(replace(event, index=idx))
        start_times[idx] = clock
        service_times[idx] = service
        clock += service
        completed += 1
    if record_faults:
        events.sort(key=lambda e: e.index)
    return start_times, service_times, events


# ----------------------------------------------------------------------
# Post-run observability (never on the hot path)
# ----------------------------------------------------------------------

def _record_metrics(
    obs: Observer,
    result: SimulationResult,
    lbas: np.ndarray,
    sizes: np.ndarray,
) -> None:
    """Fill the observer's registry from the finished run's arrays.

    A handful of vectorized passes over data the run produced anyway —
    this is what keeps ``obs_level="metrics"`` within the ≤8% overhead
    budget on the fast engines.
    """
    trace = result.trace
    metrics = obs.metrics
    n = len(trace)
    n_writes = int(trace.is_write.sum()) if n else 0
    metrics.counter("sim.requests").inc(n)
    metrics.counter("sim.reads").inc(n - n_writes)
    metrics.counter("sim.writes").inc(n_writes)
    metrics.counter("sim.sectors").inc(int(sizes.sum()) if n else 0)
    metrics.gauge("sim.utilization").set(result.utilization)
    metrics.gauge("sim.span_seconds").set(result.timeline.span)
    if n:
        metrics.histogram("sim.service_time").observe_many(result.service_times)
        metrics.histogram("sim.response_time").observe_many(result.response_times)
        # Zero waits (idle-arrival requests, the common case at low
        # utilization) land in the histogram's underflow bucket.
        metrics.histogram("sim.wait_time").observe_many(result.wait_times)
    if result.tier_summary is not None:
        summary = result.tier_summary
        metrics.counter("tier.requests").inc(summary["requests"])
        metrics.counter("tier.read_hits").inc(summary["read_hits"])
        metrics.counter("tier.write_hits").inc(summary["write_hits"])
        metrics.counter("tier.bytes_to_hdd").inc(summary["bytes_to_hdd"])
        metrics.counter("tier.flushed_bytes").inc(summary["flushed_bytes"])
        metrics.counter("tier.evictions").inc(summary["evictions"])
        metrics.counter("tier.promoted_chunks").inc(summary["promoted_chunks"])
        metrics.counter("tier.demoted_chunks").inc(summary["demoted_chunks"])
        hit_rate = summary["hit_rate"]
        if np.isfinite(hit_rate):
            metrics.gauge("tier.hit_rate").set(hit_rate)
        offload = summary["hdd_offload"]
        if np.isfinite(offload):
            metrics.gauge("tier.hdd_offload").set(offload)


def _record_cache_tally(obs: Observer, tally: Tuple[int, int, int]) -> None:
    """Record the cache counters a columnar engine tallied locally.

    Counters are created only for non-zero counts, matching the lazy
    creation of the scalar hooks (which never see a zero increment) —
    the observed registry is identical whichever engine ran.
    """
    read_hits, writes_absorbed, writes_fallthrough = tally
    metrics = obs.metrics
    if read_hits:
        metrics.counter("cache.read_hits").inc(read_hits)
    if writes_absorbed:
        metrics.counter("cache.writes_absorbed").inc(writes_absorbed)
    if writes_fallthrough:
        metrics.counter("cache.writes_fallthrough").inc(writes_fallthrough)


def _emit_serve_events(
    obs: Observer,
    trace: RequestTrace,
    lbas: np.ndarray,
    sizes: np.ndarray,
    start_times: np.ndarray,
    service_times: np.ndarray,
) -> None:
    """One ``serve`` event per request, in service order.

    The payload carries everything needed to rebuild the replayed trace
    (:func:`repro.obs.events.request_trace_from_events`): the original
    arrival, the (possibly remapped) LBA, size, direction and the trace
    index. Emission follows start-time order so the ``sim`` source stays
    time-ordered; the whole batch lands in the ring as one column block.
    """
    order = np.argsort(start_times, kind="stable")
    obs.emit_columns(
        "serve", "sim", start_times[order],
        index=order,
        arrival=trace.times[order],
        lba=lbas[order],
        nsectors=sizes[order],
        write=trace.is_write[order],
        service=service_times[order],
    )


def _emit_queue_depth_events(
    obs: Observer,
    arrivals: np.ndarray,
    start_times: np.ndarray,
) -> None:
    """Waiting-queue depth changes, reconstructed post-hoc.

    Depth goes +1 at each arrival and -1 when service starts (the
    in-service request no longer waits). Arrivals sort before starts at
    clock ties, matching the engines' admit-then-pick order.
    """
    n = arrivals.size
    if n == 0:
        return
    times = np.concatenate([arrivals, start_times])
    deltas = np.concatenate([
        np.ones(n, dtype=np.int64), -np.ones(n, dtype=np.int64)
    ])
    order = np.lexsort((-deltas, times))
    times = times[order]
    deltas = deltas[order]
    depths = np.cumsum(deltas)
    obs.metrics.gauge("sim.queue_depth_peak").set(int(depths.max()))
    obs.emit_columns("queue_depth", "queue", times, delta=deltas, depth=depths)


def _run_event_loop(
    drive: Union[DiskDrive, TieredDevice],
    scheduler: Scheduler,
    arrivals: np.ndarray,
    lbas: np.ndarray,
    sizes: np.ndarray,
    is_write: np.ndarray,
    queue_depth: Optional[int],
) -> Tuple[np.ndarray, np.ndarray, List[FaultEvent]]:
    """The reference event loop: admit arrivals, let the scheduler pick,
    serve, repeat. Handles any discipline and any queue depth."""
    n = arrivals.size
    start_times = np.empty(n, dtype=np.float64)
    service_times = np.empty(n, dtype=np.float64)
    arrival_list = arrivals.tolist()
    lba_list = lbas.tolist()
    size_list = sizes.tolist()
    write_list = is_write.tolist()
    record_faults = drive.faults is not None
    events: List[FaultEvent] = []

    # Queue entries are (cylinder, arrival_order); the queue is appended
    # to in arrival order and pops preserve relative order, so it stays
    # sorted by arrival order throughout — the oldest queue_depth entries
    # are simply the first queue_depth.
    queue: List[Tuple[int, int]] = []
    next_arrival = 0
    clock = 0.0
    completed = 0

    while completed < n:
        if not queue:
            # Idle: jump to the next arrival.
            arrival = arrival_list[next_arrival]
            if arrival > clock:
                clock = arrival
        while next_arrival < n and arrival_list[next_arrival] <= clock:
            queue.append((drive.cylinder_of(lba_list[next_arrival]), next_arrival))
            next_arrival += 1
        if not queue:
            raise SimulationError("scheduler loop reached an empty queue")
        if queue_depth is not None and len(queue) > queue_depth:
            # NCQ-style visibility: only the oldest queue_depth requests
            # (by arrival order) are dispatched to the drive.
            window = queue[:queue_depth]
            pick = scheduler.pick(window, drive.head_cylinder)
        else:
            pick = scheduler.pick(queue, drive.head_cylinder)
        _, idx = queue.pop(pick)
        service = drive.service_time(
            lba_list[idx], size_list[idx], write_list[idx], clock
        )
        if record_faults:
            event = drive.take_fault_event()
            if event is not None:
                events.append(replace(event, index=idx))
        start_times[idx] = clock
        service_times[idx] = service
        clock += service
        completed += 1
    if record_faults:
        events.sort(key=lambda e: e.index)
    return start_times, service_times, events
