"""Event-driven trace replay through the drive model.

:class:`DiskSimulator` replays a :class:`~repro.traces.RequestTrace`
against a :class:`~repro.disk.drive.DiskDrive` as a single-server queue
with a pluggable scheduling discipline, producing per-request timings and
the busy/idle timeline. This is the substitute for the measurement
infrastructure the paper had on real drives: instead of observing busy
and idle on hardware, we observe it on the model.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from repro.disk.drive import DiskDrive, DriveSpec
from repro.disk.scheduler import Scheduler, make_scheduler
from repro.disk.timeline import BusyIdleTimeline
from repro.errors import SimulationError
from repro.stats.moments import describe, SampleDescription
from repro.traces.millisecond import RequestTrace


class SimulationResult:
    """Per-request timings and derived views of one simulation run.

    All arrays are aligned with the input trace's request order.
    """

    def __init__(
        self,
        trace: RequestTrace,
        start_times: np.ndarray,
        service_times: np.ndarray,
        drive_name: str,
        scheduler_name: str,
    ) -> None:
        self.trace = trace
        self.start_times = start_times
        self.service_times = service_times
        self.drive_name = drive_name
        self.scheduler_name = scheduler_name
        self.finish_times = start_times + service_times
        span = float(max(trace.span, self.finish_times.max())) if len(trace) else trace.span
        self.timeline = BusyIdleTimeline(
            list(zip(self.start_times, self.finish_times)), span=span
        )

    @property
    def wait_times(self) -> np.ndarray:
        """Queueing delay per request: service start minus arrival."""
        return self.start_times - self.trace.times

    @property
    def response_times(self) -> np.ndarray:
        """End-to-end latency per request: completion minus arrival."""
        return self.finish_times - self.trace.times

    @property
    def utilization(self) -> float:
        """Busy fraction of the observation window."""
        return self.timeline.utilization

    def describe_response(self) -> SampleDescription:
        """Headline statistics of the response-time distribution."""
        return describe(self.response_times)

    def describe_service(self) -> SampleDescription:
        """Headline statistics of the service-time distribution."""
        return describe(self.service_times)

    def __repr__(self) -> str:
        return (
            f"SimulationResult(trace={self.trace.label!r}, n={len(self.trace)}, "
            f"drive={self.drive_name!r}, scheduler={self.scheduler_name!r}, "
            f"utilization={self.utilization:.4f})"
        )


class DiskSimulator:
    """Replay traces through a drive with a chosen queueing discipline.

    Parameters
    ----------
    drive:
        A :class:`DriveSpec` (a fresh :class:`DiskDrive` is built per run,
        keeping runs independent and reproducible) or a ready
        :class:`DiskDrive` (reset before each run).
    scheduler:
        Discipline name (``'fcfs'``, ``'sstf'``, ``'scan'``) or a
        scheduler instance. A fresh instance is made per run for named
        disciplines so stateful schedulers (SCAN) do not leak state.
    remap_lbas:
        When true, request LBAs are folded into the drive's capacity with
        a modulo, letting traces generated for a larger address space
        replay on a smaller model. Off by default: out-of-range requests
        raise instead.
    seed:
        Seed for the drive's rotational-latency RNG.
    queue_depth:
        How many queued requests the scheduler can see (NCQ/TCQ depth).
        Only the ``queue_depth`` oldest pending requests are eligible at
        each decision, so seek-aware disciplines degrade gracefully
        toward FCFS as the window shrinks. ``None`` (default) = the
        scheduler sees everything.
    """

    def __init__(
        self,
        drive: Union[DriveSpec, DiskDrive],
        scheduler: Union[str, Scheduler] = "fcfs",
        remap_lbas: bool = False,
        seed: int = 0,
        queue_depth: Optional[int] = None,
    ) -> None:
        if queue_depth is not None and queue_depth < 1:
            raise SimulationError(
                f"queue_depth must be >= 1, got {queue_depth!r}"
            )
        if isinstance(drive, DiskDrive):
            self._spec: Optional[DriveSpec] = None
            self._drive: Optional[DiskDrive] = drive
        else:
            self._spec = drive
            self._drive = None
        self._scheduler_arg = scheduler
        self.remap_lbas = bool(remap_lbas)
        self.seed = int(seed)
        self.queue_depth = queue_depth

    def _fresh_drive(self) -> DiskDrive:
        if self._drive is not None:
            self._drive.reset()
            return self._drive
        assert self._spec is not None
        return DiskDrive(self._spec, seed=self.seed)

    def _fresh_scheduler(self) -> Scheduler:
        if isinstance(self._scheduler_arg, str):
            return make_scheduler(self._scheduler_arg)
        return self._scheduler_arg

    def run(self, trace: RequestTrace) -> SimulationResult:
        """Simulate one trace; returns the per-request timings.

        The simulation is non-preemptive single-server: at each decision
        point every request that has already arrived is eligible and the
        scheduler picks among them.
        """
        drive = self._fresh_drive()
        scheduler = self._fresh_scheduler()
        n = len(trace)
        capacity = drive.geometry.capacity_sectors

        arrivals = trace.times
        lbas = trace.lbas
        if self.remap_lbas:
            sizes = np.minimum(trace.nsectors, capacity)
            lbas = lbas % np.maximum(capacity - sizes, 1)
        else:
            sizes = trace.nsectors
            ends = lbas + sizes
            if n and int(ends.max()) > capacity:
                raise SimulationError(
                    f"trace {trace.label!r} addresses beyond drive capacity "
                    f"{capacity}; generate against this drive or pass remap_lbas=True"
                )

        start_times = np.zeros(n, dtype=np.float64)
        service_times = np.zeros(n, dtype=np.float64)

        # Queue entries are (cylinder, arrival_order); payload is the index.
        queue: List[tuple] = []
        payloads: List[int] = []
        next_arrival = 0
        clock = 0.0
        completed = 0

        def admit_until(t: float) -> int:
            nonlocal next_arrival
            while next_arrival < n and arrivals[next_arrival] <= t:
                idx = next_arrival
                queue.append((drive.cylinder_of(int(lbas[idx])), idx))
                payloads.append(idx)
                next_arrival += 1
            return next_arrival

        while completed < n:
            if not queue:
                # Idle: jump to the next arrival.
                clock = max(clock, float(arrivals[next_arrival]))
            admit_until(clock)
            if not queue:
                raise SimulationError("scheduler loop reached an empty queue")
            if self.queue_depth is not None and len(queue) > self.queue_depth:
                # NCQ-style visibility: only the oldest queue_depth
                # requests (by arrival order) are dispatched to the drive.
                order = sorted(range(len(queue)), key=lambda k: queue[k][1])
                visible = order[: self.queue_depth]
                window = [queue[k] for k in visible]
                pick_in_window = scheduler.pick(window, drive.head_cylinder)
                pick = visible[pick_in_window]
            else:
                pick = scheduler.pick(queue, drive.head_cylinder)
            queue.pop(pick)
            idx = payloads.pop(pick)
            service = drive.service_time(
                int(lbas[idx]), int(sizes[idx]), bool(trace.is_write[idx]), clock
            )
            start_times[idx] = clock
            service_times[idx] = service
            clock += service
            completed += 1

        drive_name = drive.spec.name
        return SimulationResult(
            trace=trace,
            start_times=start_times,
            service_times=service_times,
            drive_name=drive_name,
            scheduler_name=getattr(scheduler, "name", type(scheduler).__name__),
        )
