"""The suite runner: characterize a whole profile set in one call.

Reproducing the paper means running the same analyses over every
workload and presenting them side by side. :func:`run_suite` does the
loop; :func:`suite_table` renders the comparative overview (the shape of
the paper's summary tables) from the results.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core.report import Table
from repro.core.timescales import MillisecondStudy, run_millisecond_study
from repro.disk.drive import DriveSpec
from repro.errors import AnalysisError
from repro.synth.profiles import available_profiles


def run_suite(
    drive: DriveSpec,
    profiles: Optional[Sequence[str]] = None,
    span: float = 120.0,
    seed: int = 0,
    scheduler: str = "fcfs",
) -> Dict[str, MillisecondStudy]:
    """Run the full millisecond study for each named profile.

    ``profiles`` defaults to every built-in profile. Returns studies
    keyed by profile name, in the given order.
    """
    catalog = available_profiles()
    names = list(profiles) if profiles is not None else sorted(catalog)
    if not names:
        raise AnalysisError("no profiles requested")
    unknown = [n for n in names if n not in catalog]
    if unknown:
        raise AnalysisError(
            f"unknown profiles {unknown}; available: {sorted(catalog)}"
        )
    return {
        name: run_millisecond_study(
            catalog[name], drive, span=span, seed=seed, scheduler=scheduler
        )
        for name in names
    }


def suite_table(studies: Dict[str, MillisecondStudy], precision: int = 3) -> Table:
    """The side-by-side overview of a suite run: one row per workload
    with the paper's headline statistics."""
    if not studies:
        raise AnalysisError("no studies to tabulate")
    table = Table(
        [
            "workload", "req_per_s", "utilization", "idle_frac",
            "idle_top10%_share", "hurst", "write_byte_frac", "seq_frac",
        ],
        title="workload suite overview",
        precision=precision,
    )
    for name, study in studies.items():
        idleness = study.idleness
        burst = study.burstiness
        table.add_row(
            [
                name,
                study.summary.request_rate,
                study.utilization.overall,
                idleness.idle_fraction if idleness else float("nan"),
                idleness.top_decile_time_share if idleness else float("nan"),
                burst.hurst_variance if burst else float("nan"),
                study.summary.write_byte_fraction,
                study.summary.sequentiality,
            ]
        )
    return table
