"""The parallel experiment runner: fan simulation jobs across cores.

Every figure/table benchmark and every suite-style study boils down to
the same shape of work: synthesize a trace for a (profile, drive,
scheduler, seed) combination, replay it through :class:`DiskSimulator`,
and keep a handful of headline numbers. :class:`ExperimentRunner` runs a
list of such :class:`ExperimentJob` descriptions across
:mod:`multiprocessing` workers, preserving input order and deriving a
deterministic per-job seed stream so a suite is reproducible regardless
of worker count or scheduling.

Jobs carry plain frozen dataclasses (profiles and drive specs pickle
cleanly), and results come back as compact :class:`JobResult` summaries
rather than full :class:`SimulationResult` objects, so the fan-out cost
is the simulation itself, not inter-process traffic.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import asdict, dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.disk.drive import DriveSpec
from repro.disk.simulator import DiskSimulator
from repro.errors import SimulationError
from repro.synth.workload import WorkloadProfile


@dataclass(frozen=True)
class ExperimentJob:
    """One simulation to run: a workload recipe against a drive model.

    Attributes
    ----------
    profile:
        The workload recipe to synthesize the trace from.
    drive:
        The drive model to replay against.
    scheduler:
        Discipline name (``'fcfs'``, ``'sstf'``, ``'scan'``).
    seed:
        Seed for both trace synthesis and the drive RNG.
    span:
        Trace length in seconds.
    queue_depth:
        NCQ visibility window (``None`` = unlimited).
    fast_path:
        Forwarded to :class:`DiskSimulator`; disable to measure the
        reference event loop.
    """

    profile: WorkloadProfile
    drive: DriveSpec
    scheduler: str = "fcfs"
    seed: int = 0
    span: float = 300.0
    queue_depth: Optional[int] = None
    fast_path: bool = True

    @property
    def label(self) -> str:
        depth = "inf" if self.queue_depth is None else str(self.queue_depth)
        return (
            f"{self.profile.name}/{self.drive.name}/{self.scheduler}"
            f"/qd={depth}/seed={self.seed}"
        )


@dataclass(frozen=True)
class JobResult:
    """Headline numbers of one completed job (cheap to pickle/serialize)."""

    label: str
    profile: str
    drive: str
    scheduler: str
    seed: int
    span: float
    n_requests: int
    utilization: float
    mean_service: float
    mean_response: float
    p95_response: float
    max_response: float
    total_busy: float
    wall_seconds: float

    @property
    def replay_rate(self) -> float:
        """Requests simulated per wall-clock second (the perf metric)."""
        if self.wall_seconds <= 0:
            return float("inf")
        return self.n_requests / self.wall_seconds

    def as_dict(self) -> Dict[str, Any]:
        record = asdict(self)
        record["replay_rate"] = self.replay_rate
        return record


def run_job(job: ExperimentJob) -> JobResult:
    """Synthesize the job's trace, replay it, summarize. Module-level so
    worker processes can unpickle it."""
    wall_start = perf_counter()
    trace = job.profile.synthesize(
        span=job.span,
        capacity_sectors=job.drive.capacity_sectors,
        seed=job.seed,
    )
    simulator = DiskSimulator(
        job.drive,
        scheduler=job.scheduler,
        seed=job.seed,
        queue_depth=job.queue_depth,
        fast_path=job.fast_path,
    )
    result = simulator.run(trace)
    wall = perf_counter() - wall_start
    if len(trace):
        response = result.describe_response()
        mean_service = float(result.service_times.mean())
        mean_response, p95, worst = response.mean, response.p95, response.maximum
    else:
        mean_service = mean_response = p95 = worst = float("nan")
    return JobResult(
        label=job.label,
        profile=job.profile.name,
        drive=job.drive.name,
        scheduler=job.scheduler,
        seed=job.seed,
        span=job.span,
        n_requests=len(trace),
        utilization=result.utilization,
        mean_service=mean_service,
        mean_response=mean_response,
        p95_response=p95,
        max_response=worst,
        total_busy=float(result.timeline.total_busy),
        wall_seconds=wall,
    )


def derive_seeds(base_seed: int, count: int) -> List[int]:
    """A deterministic, well-spread seed per job index.

    Uses :class:`numpy.random.SeedSequence` spawn keys, so job *i* gets
    the same seed no matter how many jobs surround it or how they are
    distributed over workers.
    """
    if count < 0:
        raise SimulationError(f"count must be >= 0, got {count!r}")
    root = np.random.SeedSequence(base_seed)
    return [int(s.generate_state(1)[0]) for s in root.spawn(count)]


def experiment_matrix(
    profiles: Sequence[WorkloadProfile],
    drive: DriveSpec,
    schedulers: Sequence[str] = ("fcfs",),
    seeds_per_combo: int = 1,
    base_seed: int = 0,
    span: float = 300.0,
    queue_depth: Optional[int] = None,
) -> List[ExperimentJob]:
    """The cross product profiles x schedulers x replicates as a job list,
    with per-job seeds derived deterministically from ``base_seed``."""
    if seeds_per_combo < 1:
        raise SimulationError(
            f"seeds_per_combo must be >= 1, got {seeds_per_combo!r}"
        )
    combos = [
        (profile, scheduler)
        for profile in profiles
        for scheduler in schedulers
    ]
    seeds = derive_seeds(base_seed, len(combos) * seeds_per_combo)
    jobs: List[ExperimentJob] = []
    for c, (profile, scheduler) in enumerate(combos):
        for r in range(seeds_per_combo):
            jobs.append(
                ExperimentJob(
                    profile=profile,
                    drive=drive,
                    scheduler=scheduler,
                    seed=seeds[c * seeds_per_combo + r],
                    span=span,
                    queue_depth=queue_depth,
                )
            )
    return jobs


class ExperimentRunner:
    """Run experiment jobs across processes, results in input order.

    Parameters
    ----------
    workers:
        Worker process count. ``None`` = one per CPU (capped at the job
        count); ``1`` = run inline in this process, with no
        multiprocessing at all (deterministic, debugger-friendly, and the
        right choice inside already-parallel harnesses).
    """

    def __init__(self, workers: Optional[int] = None) -> None:
        if workers is not None and workers < 1:
            raise SimulationError(f"workers must be >= 1, got {workers!r}")
        self.workers = workers

    def _worker_count(self, n_jobs: int) -> int:
        workers = self.workers if self.workers is not None else (os.cpu_count() or 1)
        return max(1, min(workers, n_jobs))

    def run(self, jobs: Sequence[ExperimentJob]) -> List[JobResult]:
        """Execute every job; the i-th result belongs to the i-th job."""
        jobs = list(jobs)
        if not jobs:
            return []
        workers = self._worker_count(len(jobs))
        if workers == 1:
            return [run_job(job) for job in jobs]
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        chunksize = max(1, len(jobs) // (workers * 4))
        with context.Pool(processes=workers) as pool:
            return pool.map(run_job, jobs, chunksize=chunksize)
