"""The parallel experiment runner: fan simulation jobs across cores.

Every figure/table benchmark and every suite-style study boils down to
the same shape of work: synthesize a trace for a (profile, drive,
scheduler, seed) combination, replay it through :class:`DiskSimulator`,
and keep a handful of headline numbers. :class:`ExperimentRunner` runs a
list of such :class:`ExperimentJob` descriptions across
:mod:`multiprocessing` workers, preserving input order and deriving a
deterministic per-job seed stream so a suite is reproducible regardless
of worker count or scheduling.

Jobs carry plain frozen dataclasses (profiles and drive specs pickle
cleanly), and results come back as compact :class:`JobResult` summaries
rather than full :class:`SimulationResult` objects, so the fan-out cost
is the simulation itself, not inter-process traffic.

Resilience
----------
Long suites at fleet scale must survive the failures the fleet actually
produces, so the runner carries a resilience layer:

* **Durable checkpoint/resume** — pass a
  :class:`~repro.core.journal.SuiteJournal` to :meth:`run_suite` and
  every completed job is fsync'd to an append-only WAL; reopening the
  journal with ``resume=True`` skips the journaled jobs and merges their
  recorded results, canonically bit-identical to an uninterrupted run
  (:meth:`SuiteReport.canonical_json`).
* **Crash/timeout resubmission** — a worker killed mid-job (OOM killer,
  ``SIGKILL``) or overrunning its per-job timeout is respawned and the
  job resubmitted, up to ``max_retries`` extra submissions, with the
  shared :class:`~repro.core.backoff.BackoffPolicy` spacing attempts.
* **Chaos injection** — a seeded
  :class:`~repro.core.chaos.ChaosPolicy` makes the runner torture its
  own pool (kills, stalls, delays, shared-memory attach failures);
  chaos-injected kills do not consume the retry budget.
* **Resource guards** — a per-worker RSS watchdog recycles bloated
  workers, and ``suite_deadline`` returns a partial-but-valid (and,
  with a journal, resumable) report instead of overrunning.

Everything the resilience layer did to a suite is reported in
:attr:`SuiteReport.resilience` (:mod:`repro.obs`-style counters).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal as signal_module
import traceback as traceback_module
from collections import deque
from contextlib import nullcontext
from dataclasses import asdict, dataclass, fields as dataclass_fields
from time import perf_counter, sleep
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.backoff import BackoffPolicy
from repro.core.chaos import ChaosPlan, ChaosPolicy
from repro.disk.drive import DriveSpec
from repro.disk.faults import FaultProfile
from repro.disk.simulator import DiskSimulator
from repro.errors import (
    FleetError,
    ObservabilityError,
    ResourceGuardError,
    SimulationError,
    SuiteError,
)
from repro.obs import OBS_LEVELS, MetricsRegistry, Observer
from repro.synth.workload import WorkloadProfile
from repro.tier import TierConfig
from repro.traces.ingest.source import TraceSource

#: Version stamp written by :meth:`SuiteReport.to_json`; bump on any
#: backwards-incompatible change to the serialized layout. (The
#: resilience fields added for crash-safe suites are optional and
#: omitted when empty, so version 1 payloads remain readable and
#: pre-resilience readers still parse new all-clear payloads.)
SCHEMA_VERSION = 1

#: Default spacing of retry attempts (shared with the drive-level retry
#: ladder machinery in :mod:`repro.core.backoff`).
DEFAULT_RETRY_BACKOFF = BackoffPolicy(
    base=0.02, factor=2.0, jitter=0.25, max_delay=2.0, seed=0
)


@dataclass(frozen=True)
class ExperimentJob:
    """One simulation to run: a workload recipe against a drive model.

    Attributes
    ----------
    profile:
        The workload recipe to synthesize the trace from. ``None`` when
        the job replays an ingested trace instead (see ``trace``).
    drive:
        The drive model to replay against.
    scheduler:
        Discipline name (``'fcfs'``, ``'sstf'``, ``'scan'``).
    seed:
        Seed for both trace synthesis and the drive RNG.
    span:
        Trace length in seconds.
    queue_depth:
        NCQ visibility window (``None`` = unlimited).
    fast_path:
        Forwarded to :class:`DiskSimulator`; disable to measure the
        reference event loop.
    faults:
        Optional :class:`~repro.disk.faults.FaultProfile` to inject
        during the replay (``None`` = healthy drive). A profile, not a
        model: each worker materializes its own
        :class:`~repro.disk.faults.FaultModel` from the profile and the
        job seed, so fault placement and draws are identical no matter
        which worker runs the job.
    tier:
        Optional :class:`~repro.tier.TierConfig` placing an SSD cache
        tier in front of the drive (``None`` = bare drive,
        bit-identical to a runner without the field). A config, not a
        device: each worker materializes its own
        :class:`~repro.tier.TieredDevice`, so flash placement is
        identical no matter which worker runs the job.
    obs_level:
        Observability for this job: ``"off"`` (default, bit-identical to
        the uninstrumented runner), ``"metrics"`` (the job's
        :class:`~repro.obs.MetricsRegistry` snapshot and phase timings
        come back on the :class:`JobResult`), or ``"trace"`` (typed
        events too). A level, not an :class:`~repro.obs.Observer`: each
        worker builds its own observer, and the shards merge in the
        parent via :meth:`SuiteReport.merged_metrics`.
    trace:
        Optional trace handle replacing synthesis with a replay
        (``None`` = synthesize from ``profile``; exactly one of the two
        must be set). A pointer, not a trace: each worker calls
        ``trace.load()`` itself, so the job stays cheap to pickle
        however large the capture is. Any object with ``load()`` and
        ``label`` works — a
        :class:`~repro.traces.ingest.source.TraceSource` re-reads a
        file per worker, a
        :class:`~repro.traces.shared.SharedTraceSource` attaches the
        publisher's shared-memory columns without pickling or re-parsing
        a byte of request payload. Trace jobs ignore ``span`` (the
        capture's own span rules) and use ``seed`` only for the drive
        RNG.
    tenants:
        Optional tuple of :class:`~repro.fleet.tenant.TenantLoad` —
        the third workload source: the job multiplexes every tenant's
        stream onto this one shared drive (equal contiguous volumes,
        deterministic per-tenant seeds spawned from the job seed) and
        the result carries per-tenant QoS (``JobResult.tenant_qos``).
        Exactly one of ``profile``, ``trace`` and ``tenants`` must be
        set.
    interference:
        Fleet jobs only: additionally replay each tenant *alone* on the
        same drive and report isolated-vs-colocated tail inflation
        (``JobResult.tenant_interference``) — the noisy-neighbor
        metric. Costs one extra simulation per tenant.
    """

    profile: Optional[WorkloadProfile]
    drive: DriveSpec
    scheduler: str = "fcfs"
    seed: int = 0
    span: float = 300.0
    queue_depth: Optional[int] = None
    fast_path: bool = True
    faults: Optional[FaultProfile] = None
    tier: Optional[TierConfig] = None
    obs_level: str = "off"
    trace: Optional[TraceSource] = None
    tenants: Optional[Tuple[Any, ...]] = None
    interference: bool = False

    def __post_init__(self) -> None:
        if self.obs_level not in OBS_LEVELS:
            raise ObservabilityError(
                f"unknown obs_level {self.obs_level!r}; "
                f"expected one of {OBS_LEVELS}"
            )
        sources = (self.profile, self.trace, self.tenants)
        if sum(source is not None for source in sources) != 1:
            raise SimulationError(
                "an ExperimentJob needs exactly one workload source: "
                "a profile to synthesize, a trace to replay, or a "
                "tenant set to multiplex"
            )
        if self.tenants is not None:
            if not self.tenants:
                raise FleetError("a fleet job needs at least one tenant")
            ids = [t.tenant_id for t in self.tenants]
            if len(set(ids)) != len(ids):
                raise FleetError("tenant ids must be unique within a fleet job")
        if self.interference and self.tenants is None:
            raise FleetError(
                "interference accounting requires a tenant set"
            )

    @property
    def workload_name(self) -> str:
        """Name of whatever drives the job: profile name, trace stem, or
        the tenant-count tag of a fleet job."""
        if self.profile is not None:
            return self.profile.name
        if self.tenants is not None:
            return f"fleet-{len(self.tenants)}t"
        return self.trace.label

    @property
    def label(self) -> str:
        depth = "inf" if self.queue_depth is None else str(self.queue_depth)
        label = (
            f"{self.workload_name}/{self.drive.name}/{self.scheduler}"
            f"/qd={depth}/seed={self.seed}"
        )
        if self.faults is not None:
            label += f"/faults={self.faults.name}"
        if self.tier is not None:
            label += f"/tier={self.tier.name}"
        return label


@dataclass(frozen=True)
class JobResult:
    """Headline numbers of one completed job (cheap to pickle/serialize).

    The fault fields are all-zero (and ``p99_response`` tracks the
    healthy distribution) when the job ran without a fault profile.
    """

    label: str
    profile: str
    drive: str
    scheduler: str
    seed: int
    span: float
    n_requests: int
    utilization: float
    mean_service: float
    mean_response: float
    p95_response: float
    max_response: float
    total_busy: float
    wall_seconds: float
    p99_response: float = float("nan")
    n_faulted: int = 0
    n_failed: int = 0
    fault_penalty_seconds: float = 0.0
    #: Tier accounting, all ``None`` when the job ran untiered; the
    #: serialized record then omits them entirely, so untiered suites
    #: (and their golden files) look exactly as they did pre-tier.
    tier_hit_rate: Optional[float] = None
    tier_hdd_offload: Optional[float] = None
    tier_flushed_bytes: Optional[int] = None
    tier_migrated_chunks: Optional[int] = None
    #: Per-tenant QoS of a fleet job (``tenant_id -> tail entry``; see
    #: :func:`repro.fleet.qos.tenant_qos_from_result`); ``None`` for
    #: single-workload jobs, and omitted from the serialized record so
    #: pre-fleet suites and goldens are byte-identical.
    tenant_qos: Optional[Dict[str, Any]] = None
    #: Noisy-neighbor report of a fleet job run with
    #: ``interference=True`` (isolated vs co-located tails per tenant);
    #: ``None`` otherwise and likewise omitted when absent.
    tenant_interference: Optional[Dict[str, Any]] = None
    #: Per-phase wall/CPU seconds (``None`` when the job ran with
    #: ``obs_level="off"``); keys are phase names like ``"simulate"``.
    phase_wall: Optional[Dict[str, float]] = None
    phase_cpu: Optional[Dict[str, float]] = None
    #: :meth:`~repro.obs.MetricsRegistry.as_dict` snapshot (``None`` at
    #: ``obs_level="off"``) — merge shards with
    #: :meth:`SuiteReport.merged_metrics`.
    metrics: Optional[Dict[str, Any]] = None
    #: Retained :class:`~repro.obs.TraceEvent` dicts (``None`` below
    #: ``obs_level="trace"``).
    trace_events: Optional[List[Dict[str, Any]]] = None

    @property
    def replay_rate(self) -> float:
        """Requests simulated per wall-clock second (the perf metric)."""
        if self.wall_seconds <= 0:
            return float("inf")
        return self.n_requests / self.wall_seconds

    def as_dict(self) -> Dict[str, Any]:
        record = asdict(self)
        record["replay_rate"] = self.replay_rate
        for key in (
            "tier_hit_rate",
            "tier_hdd_offload",
            "tier_flushed_bytes",
            "tier_migrated_chunks",
            "tenant_qos",
            "tenant_interference",
        ):
            if record[key] is None:
                del record[key]
        return record


def run_job(job: ExperimentJob) -> JobResult:
    """Synthesize the job's trace, replay it, summarize. Module-level so
    worker processes can unpickle it.

    With ``job.obs_level != "off"`` an :class:`~repro.obs.Observer` is
    built for the job: phases (``synthesize`` / ``simulate`` /
    ``describe``) are timed through its :class:`~repro.obs.ProfileScope`
    and the registry/event snapshots travel back on the result. At
    ``"off"`` no observer exists at all — the phase context managers are
    :func:`~contextlib.nullcontext` — so the job runs exactly as it did
    before observability existed.
    """
    wall_start = perf_counter()
    obs = Observer(job.obs_level) if job.obs_level != "off" else None

    def phase(name: str):
        return obs.profile.phase(name) if obs is not None else nullcontext()

    columns = None
    tenant_idx = None
    with phase("synthesize"):
        if job.trace is not None:
            trace = job.trace.load()
        elif job.tenants is not None:
            # Lazy import: the fleet layer builds on the runner, so the
            # runner must not import it at module level.
            from repro.fleet.multiplex import (
                combine_columns,
                synthesize_tenant_columns,
            )

            columns = synthesize_tenant_columns(
                job.tenants, job.drive.capacity_sectors, job.span, seed=job.seed
            )
            trace, tenant_idx = combine_columns(
                columns, span=job.span, capacity_sectors=job.drive.capacity_sectors
            )
        else:
            trace = job.profile.synthesize(
                span=job.span,
                capacity_sectors=job.drive.capacity_sectors,
                seed=job.seed,
            )
    simulator = DiskSimulator(
        job.drive,
        scheduler=job.scheduler,
        seed=job.seed,
        queue_depth=job.queue_depth,
        fast_path=job.fast_path,
        faults=job.faults,
        tier=job.tier,
        obs=obs,
    )
    with phase("simulate"):
        result = simulator.run(trace)
    with phase("describe"):
        if len(trace):
            response = result.describe_response()
            mean_service = float(result.service_times.mean())
            mean_response, p95, worst = response.mean, response.p95, response.maximum
            p99 = response.p99
        else:
            mean_service = mean_response = p95 = p99 = worst = float("nan")
    tenant_qos = tenant_interference = None
    if job.tenants is not None:
        from repro.fleet.qos import interference_report, tenant_qos_from_result

        with phase("qos"):
            responses = np.asarray(result.response_times, dtype=np.float64)
            tenant_qos = tenant_qos_from_result(job.tenants, tenant_idx, responses)
            if obs is not None:
                # Recorded post-hoc so the simulated numbers stay
                # bit-identical to an unobserved run of the same job.
                for k, tenant in enumerate(job.tenants):
                    entry = tenant_qos[tenant.tenant_id]
                    obs.metrics.counter(
                        f"fleet.tenant.{tenant.tenant_id}.requests"
                    ).inc(entry["n_requests"])
                    obs.metrics.histogram(
                        f"fleet.tenant.{tenant.tenant_id}.response"
                    ).observe_many(responses[tenant_idx == k])
            if job.interference:
                tenant_interference = interference_report(job, columns, tenant_qos)
    wall = perf_counter() - wall_start
    if obs is not None:
        phase_wall, phase_cpu = obs.profile.as_dicts()
        metrics = obs.metrics.as_dict()
        trace_events = (
            [e.as_dict() for e in obs.events] if obs.events is not None else None
        )
    else:
        phase_wall = phase_cpu = metrics = trace_events = None
    if result.tier_summary is not None:
        summary = result.tier_summary
        tier_hit_rate: Optional[float] = float(summary["hit_rate"])
        tier_hdd_offload: Optional[float] = float(summary["hdd_offload"])
        tier_flushed_bytes: Optional[int] = int(summary["flushed_bytes"])
        tier_migrated_chunks: Optional[int] = int(
            summary["promoted_chunks"] + summary["demoted_chunks"]
        )
    else:
        tier_hit_rate = tier_hdd_offload = None
        tier_flushed_bytes = tier_migrated_chunks = None
    return JobResult(
        label=job.label,
        profile=job.workload_name,
        drive=job.drive.name,
        scheduler=job.scheduler,
        seed=job.seed,
        span=trace.span if job.profile is None else job.span,
        n_requests=len(trace),
        utilization=result.utilization,
        mean_service=mean_service,
        mean_response=mean_response,
        p95_response=p95,
        max_response=worst,
        total_busy=float(result.timeline.total_busy),
        wall_seconds=wall,
        p99_response=p99,
        n_faulted=result.n_faulted,
        n_failed=result.n_failed,
        fault_penalty_seconds=result.fault_penalty_seconds,
        tier_hit_rate=tier_hit_rate,
        tier_hdd_offload=tier_hdd_offload,
        tier_flushed_bytes=tier_flushed_bytes,
        tier_migrated_chunks=tier_migrated_chunks,
        tenant_qos=tenant_qos,
        tenant_interference=tenant_interference,
        phase_wall=phase_wall,
        phase_cpu=phase_cpu,
        metrics=metrics,
        trace_events=trace_events,
    )


def derive_seeds(base_seed: int, count: int) -> List[int]:
    """A deterministic, well-spread seed per job index.

    Uses :class:`numpy.random.SeedSequence` spawn keys, so job *i* gets
    the same seed no matter how many jobs surround it or how they are
    distributed over workers.
    """
    if count < 0:
        raise SimulationError(f"count must be >= 0, got {count!r}")
    root = np.random.SeedSequence(base_seed)
    return [int(s.generate_state(1)[0]) for s in root.spawn(count)]


def experiment_matrix(
    profiles: Sequence[WorkloadProfile],
    drive: DriveSpec,
    schedulers: Sequence[str] = ("fcfs",),
    seeds_per_combo: int = 1,
    base_seed: int = 0,
    span: float = 300.0,
    queue_depth: Optional[int] = None,
    faults: Optional[FaultProfile] = None,
    tier: Optional[TierConfig] = None,
    obs_level: str = "off",
) -> List[ExperimentJob]:
    """The cross product profiles x schedulers x replicates as a job list,
    with per-job seeds derived deterministically from ``base_seed``.

    ``faults`` applies one fault profile to every job in the matrix
    (compare two matrices — one healthy, one degraded — rather than
    mixing modes within a matrix); ``tier`` and ``obs_level`` likewise
    apply one tier configuration and one observability level to every
    job."""
    if seeds_per_combo < 1:
        raise SimulationError(
            f"seeds_per_combo must be >= 1, got {seeds_per_combo!r}"
        )
    combos = [
        (profile, scheduler)
        for profile in profiles
        for scheduler in schedulers
    ]
    seeds = derive_seeds(base_seed, len(combos) * seeds_per_combo)
    jobs: List[ExperimentJob] = []
    for c, (profile, scheduler) in enumerate(combos):
        for r in range(seeds_per_combo):
            jobs.append(
                ExperimentJob(
                    profile=profile,
                    drive=drive,
                    scheduler=scheduler,
                    seed=seeds[c * seeds_per_combo + r],
                    span=span,
                    queue_depth=queue_depth,
                    faults=faults,
                    tier=tier,
                    obs_level=obs_level,
                )
            )
    return jobs


@dataclass(frozen=True)
class JobFailure:
    """Structured record of one job that did not produce a result.

    Attributes
    ----------
    label:
        The failed job's label (``job.label`` when available).
    index:
        Position of the job in the submitted sequence.
    error_type:
        Exception class name (``"TimeoutError"`` for per-job timeouts).
    message:
        ``str(exception)`` of the final attempt.
    traceback:
        Formatted traceback of the final attempt (empty for timeouts,
        which are detected from the parent process).
    attempts:
        How many times the job was tried before giving up.
    wall_seconds:
        Wall time spent on the job across every attempt.
    """

    label: str
    index: int
    error_type: str
    message: str
    traceback: str
    attempts: int
    wall_seconds: float

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)


JobOutcome = Union[JobResult, JobFailure]

#: ``progress(done, total, outcome)`` called after each job resolves.
ProgressCallback = Callable[[int, int, JobOutcome], None]


@dataclass(frozen=True)
class SuiteReport:
    """Everything that happened while running one suite of jobs.

    ``results`` holds the successful :class:`JobResult`\\ s in input
    order; ``failures`` holds the :class:`JobFailure`\\ s, also in input
    order (``JobFailure.index`` maps each back to its job). Under
    ``on_error="raise"`` a partial report — only the jobs that resolved
    before the stop — travels on :class:`~repro.errors.SuiteError`.

    ``resilience`` (``None`` when nothing happened) counts what the
    crash/chaos/degradation machinery did: worker crashes and
    resubmissions, chaos injections, journal skips/records, recycled
    workers, deadline hits. ``deadline_exceeded`` marks a report cut
    short by ``suite_deadline`` — partial but valid, and resumable when
    a journal was attached.
    """

    results: Tuple[JobResult, ...]
    failures: Tuple[JobFailure, ...]
    n_jobs: int
    workers: int
    retries: int
    wall_seconds: float
    deadline_exceeded: bool = False
    resilience: Optional[Dict[str, int]] = None

    @property
    def ok(self) -> bool:
        """True when every job produced a result."""
        return not self.failures

    @property
    def n_completed(self) -> int:
        """Jobs that resolved either way (< ``n_jobs`` after fail-fast)."""
        return len(self.results) + len(self.failures)

    @property
    def n_faulted(self) -> int:
        """Requests that hit at least one fault, across every job."""
        return sum(r.n_faulted for r in self.results)

    @property
    def n_failed_requests(self) -> int:
        """Requests that exhausted recovery, across every job."""
        return sum(r.n_failed for r in self.results)

    @property
    def fault_penalty_seconds(self) -> float:
        """Extra service seconds the fault machinery added, suite-wide."""
        return float(sum(r.fault_penalty_seconds for r in self.results))

    @property
    def tiered_results(self) -> Tuple[JobResult, ...]:
        """The results that ran with an SSD tier attached."""
        return tuple(r for r in self.results if r.tier_hit_rate is not None)

    def _tier_weighted(self, attr: str) -> float:
        """Request-weighted mean of one per-job tier rate, skipping jobs
        whose rate is undefined (zero-request runs report NaN)."""
        total = 0.0
        weight = 0
        for result in self.tiered_results:
            value = getattr(result, attr)
            if value is None or not np.isfinite(value):
                continue
            total += value * result.n_requests
            weight += result.n_requests
        return total / weight if weight else float("nan")

    @property
    def tier_hit_rate(self) -> float:
        """Request-weighted flash hit rate across the tiered jobs."""
        return self._tier_weighted("tier_hit_rate")

    @property
    def tier_hdd_offload(self) -> float:
        """Request-weighted HDD byte-offload across the tiered jobs."""
        return self._tier_weighted("tier_hdd_offload")

    @property
    def tier_flushed_bytes(self) -> int:
        """Dirty bytes destaged to the HDD, suite-wide."""
        return sum(r.tier_flushed_bytes or 0 for r in self.tiered_results)

    @property
    def tier_migrated_chunks(self) -> int:
        """Chunks moved by migration epochs, suite-wide."""
        return sum(r.tier_migrated_chunks or 0 for r in self.tiered_results)

    @property
    def tenant_results(self) -> Tuple[JobResult, ...]:
        """The results that ran as multi-tenant fleet jobs."""
        return tuple(r for r in self.results if r.tenant_qos is not None)

    def fleet_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-tenant rollup across every fleet job in the suite.

        Returns ``tenant_id -> {"drives", "n_requests", "mean_response",
        "p99_response", "p999_response", "max_response"}`` where the
        mean is request-weighted and the tails are the worst across the
        tenant's drives (NaN entries from empty samples are skipped).
        Empty when no job carried tenants.
        """
        summary: Dict[str, Dict[str, float]] = {}
        for result in self.tenant_results:
            for tenant_id, entry in result.tenant_qos.items():
                agg = summary.setdefault(
                    tenant_id,
                    {
                        "drives": 0,
                        "n_requests": 0,
                        "mean_response": 0.0,
                        "p99_response": float("-inf"),
                        "p999_response": float("-inf"),
                        "max_response": float("-inf"),
                    },
                )
                agg["drives"] += 1
                n = int(entry["n_requests"])
                agg["n_requests"] += n
                if n and np.isfinite(entry["mean_response"]):
                    agg["mean_response"] += float(entry["mean_response"]) * n
                for key in ("p99_response", "p999_response", "max_response"):
                    value = float(entry[key])
                    if np.isfinite(value):
                        agg[key] = max(agg[key], value)
        for agg in summary.values():
            agg["mean_response"] = (
                agg["mean_response"] / agg["n_requests"]
                if agg["n_requests"]
                else float("nan")
            )
            for key in ("p99_response", "p999_response", "max_response"):
                if agg[key] == float("-inf"):
                    agg[key] = float("nan")
        return summary

    def phase_breakdown(self) -> Dict[str, Dict[str, float]]:
        """Suite-wide per-phase totals from the jobs that ran observed.

        Returns ``phase -> {"wall_seconds", "cpu_seconds", "jobs"}``,
        summed across every result carrying phase timings; empty when
        the whole suite ran at ``obs_level="off"``.
        """
        breakdown: Dict[str, Dict[str, float]] = {}
        for result in self.results:
            if result.phase_wall is None:
                continue
            cpu = result.phase_cpu or {}
            for name, wall in result.phase_wall.items():
                entry = breakdown.setdefault(
                    name, {"wall_seconds": 0.0, "cpu_seconds": 0.0, "jobs": 0}
                )
                entry["wall_seconds"] += float(wall)
                entry["cpu_seconds"] += float(cpu.get(name, 0.0))
                entry["jobs"] += 1
        return breakdown

    def merged_metrics(self) -> Optional[MetricsRegistry]:
        """Every observed job's registry folded into one
        :class:`~repro.obs.MetricsRegistry` (Chan-style, order-safe), or
        ``None`` when no job recorded metrics."""
        merged: Optional[MetricsRegistry] = None
        for result in self.results:
            if result.metrics is None:
                continue
            shard = MetricsRegistry.from_dict(result.metrics)
            merged = shard if merged is None else merged.merge(shard)
        return merged

    def as_dict(self) -> Dict[str, Any]:
        payload = {
            "n_jobs": self.n_jobs,
            "workers": self.workers,
            "retries": self.retries,
            "wall_seconds": self.wall_seconds,
            "results": [r.as_dict() for r in self.results],
            "failures": [f.as_dict() for f in self.failures],
            "fault_summary": {
                "n_faulted": self.n_faulted,
                "n_failed_requests": self.n_failed_requests,
                "fault_penalty_seconds": self.fault_penalty_seconds,
            },
        }
        # Only when some job actually ran tiered — untiered suites
        # serialize exactly as they did before the tier existed.
        if self.tiered_results:
            payload["tier_summary"] = {
                "n_tiered_jobs": len(self.tiered_results),
                "hit_rate": self.tier_hit_rate,
                "hdd_offload": self.tier_hdd_offload,
                "flushed_bytes": self.tier_flushed_bytes,
                "migrated_chunks": self.tier_migrated_chunks,
            }
        # Only when some job carried tenants — single-workload suites
        # serialize exactly as they did before the fleet existed.
        if self.tenant_results:
            payload["fleet_summary"] = self.fleet_summary()
        # Likewise for the resilience layer: a suite where nothing
        # crashed, resumed, or degraded serializes exactly as before.
        if self.deadline_exceeded:
            payload["deadline_exceeded"] = True
        if self.resilience:
            payload["resilience"] = dict(self.resilience)
        return payload

    # ------------------------------------------------------------------
    # Versioned serialization (golden files, archived suite runs)
    # ------------------------------------------------------------------

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialize the report with a schema version stamp.

        The payload is :meth:`as_dict` plus ``schema_version``;
        :meth:`from_json` refuses payloads from a different schema, so
        archived reports fail loudly instead of deserializing wrongly.
        NaN fields (e.g. ``p99_response`` of an empty job) round-trip
        via Python's JSON extension literals.
        """
        payload = {"schema_version": SCHEMA_VERSION, **self.as_dict()}
        return json.dumps(payload, indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SuiteReport":
        """Rebuild a report serialized by :meth:`to_json`."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ObservabilityError(f"invalid SuiteReport JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ObservabilityError(
                f"SuiteReport JSON must be an object, got {type(payload).__name__}"
            )
        version = payload.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ObservabilityError(
                f"SuiteReport schema_version {version!r} is not supported "
                f"(this library reads version {SCHEMA_VERSION})"
            )
        try:
            return cls(
                results=tuple(
                    _dataclass_from_record(JobResult, record)
                    for record in payload.get("results", [])
                ),
                failures=tuple(
                    _dataclass_from_record(JobFailure, record)
                    for record in payload.get("failures", [])
                ),
                n_jobs=int(payload["n_jobs"]),
                workers=int(payload["workers"]),
                retries=int(payload["retries"]),
                wall_seconds=float(payload["wall_seconds"]),
                deadline_exceeded=bool(payload.get("deadline_exceeded", False)),
                resilience=payload.get("resilience"),
            )
        except KeyError as exc:
            raise ObservabilityError(
                f"SuiteReport JSON is missing field {exc}"
            ) from exc

    #: Suite-level fields scrubbed by :meth:`canonical_json` (wall-clock
    #: and environment artifacts that legitimately differ between a
    #: clean run and a crashed-and-resumed or chaos-tortured run).
    VOLATILE_SUITE_KEYS = (
        "wall_seconds", "workers", "retries", "resilience",
        "deadline_exceeded",
    )
    #: Per-record timing fields scrubbed by :meth:`canonical_json`.
    VOLATILE_RESULT_KEYS = (
        "wall_seconds", "replay_rate", "phase_wall", "phase_cpu",
    )

    def canonical_json(self) -> str:
        """The report's *determinism surface*: :meth:`to_json` minus
        wall-clock and environment fields.

        This is the normative bit-identity guarantee of the resilience
        layer: a suite that crashed and resumed from its journal, or ran
        under a chaos policy, must produce byte-identical
        ``canonical_json()`` to the same suite running uninterrupted —
        every simulated number, label, seed and metric equal, with only
        wall-clock timings, worker counts, retry counts and the
        resilience ledger allowed to differ. Enforced by tests and the
        CI chaos-smoke job.
        """
        payload = json.loads(self.to_json())
        for key in self.VOLATILE_SUITE_KEYS:
            payload.pop(key, None)
        for record in payload.get("results", []):
            for key in self.VOLATILE_RESULT_KEYS:
                record.pop(key, None)
        for record in payload.get("failures", []):
            record.pop("wall_seconds", None)
            record.pop("attempts", None)
        return json.dumps(payload, indent=2, sort_keys=True)


def _dataclass_from_record(cls: type, record: Mapping[str, Any]) -> Any:
    """Build a frozen record dataclass from a JSON object, ignoring
    derived extras (``replay_rate``) and rejecting missing fields."""
    names = {f.name for f in dataclass_fields(cls)}
    try:
        return cls(**{k: v for k, v in record.items() if k in names})
    except TypeError as exc:
        raise ObservabilityError(
            f"malformed {cls.__name__} record: {exc}"
        ) from exc


# ----------------------------------------------------------------------
# Sharded execution: partition jobs into contiguous shards so one
# dispatch (and one journal record) covers several drives of a fleet.
# ----------------------------------------------------------------------


def make_shards(n_jobs: int, shard_size: int) -> Tuple[Tuple[int, ...], ...]:
    """Partition ``range(n_jobs)`` into contiguous index shards.

    Every index appears in exactly one shard (the partition property the
    fleet test-suite asserts); the last shard may be short.
    """
    if shard_size < 1:
        raise SimulationError(f"shard_size must be >= 1, got {shard_size!r}")
    if n_jobs < 0:
        raise SimulationError(f"n_jobs must be >= 0, got {n_jobs!r}")
    return tuple(
        tuple(range(i, min(i + shard_size, n_jobs)))
        for i in range(0, n_jobs, shard_size)
    )


@dataclass(frozen=True)
class JobShard:
    """A contiguous slice of a suite's jobs dispatched as one unit.

    Carries both the member jobs and their positions in the original
    job list, so shard outcomes flatten back into input order. Shards
    are what a sharded suite journals: resuming requires the same
    ``shard_size`` (a different size changes the shard fingerprints and
    the journal refuses them).
    """

    indices: Tuple[int, ...]
    jobs: Tuple[ExperimentJob, ...]

    @property
    def label(self) -> str:
        return f"shard[{self.indices[0]}..{self.indices[-1]}]"


def shard_jobs(jobs: Sequence[ExperimentJob], shard_size: int) -> List[JobShard]:
    """Slice a job list into :class:`JobShard` units of ``shard_size``."""
    jobs = tuple(jobs)
    return [
        JobShard(indices=indices, jobs=tuple(jobs[i] for i in indices))
        for indices in make_shards(len(jobs), shard_size)
    ]


@dataclass(frozen=True)
class ShardResult:
    """Outcomes of one shard's members, in shard order."""

    indices: Tuple[int, ...]
    outcomes: Tuple[JobOutcome, ...]

    @property
    def ok(self) -> bool:
        """True when every member produced a result (journal-worthy:
        shards with failed members are re-run on resume)."""
        return all(isinstance(o, JobResult) for o in self.outcomes)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "indices": list(self.indices),
            "outcomes": [
                {"kind": "result", **o.as_dict()}
                if isinstance(o, JobResult)
                else {"kind": "failure", **o.as_dict()}
                for o in self.outcomes
            ],
        }

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "ShardResult":
        outcomes: List[JobOutcome] = []
        for entry in record["outcomes"]:
            entry = dict(entry)
            kind = entry.pop("kind", "result")
            target = JobFailure if kind == "failure" else JobResult
            outcomes.append(_dataclass_from_record(target, entry))
        return cls(indices=tuple(record["indices"]), outcomes=tuple(outcomes))


class _ShardRunner:
    """Picklable ``job_fn`` over :class:`JobShard`: run every member
    through :func:`_execute_job` (bounded member-level retries, errors
    captured as :class:`JobFailure`) and return a :class:`ShardResult`.
    Module-level class, not a closure, so pooled workers can unpickle
    it."""

    __slots__ = ("job_fn", "max_retries", "backoff")

    def __init__(
        self,
        job_fn: Callable[[ExperimentJob], JobResult],
        max_retries: int = 0,
        backoff: Optional[BackoffPolicy] = None,
    ) -> None:
        self.job_fn = job_fn
        self.max_retries = max_retries
        self.backoff = backoff

    def __call__(self, shard: JobShard) -> ShardResult:
        outcomes = []
        for index, job in zip(shard.indices, shard.jobs):
            _, outcome, _, _ = _execute_job(
                self.job_fn, job, index, self.max_retries, self.backoff
            )
            outcomes.append(outcome)
        return ShardResult(indices=shard.indices, outcomes=tuple(outcomes))


def _rss_bytes() -> int:
    """Resident set size of this process, best effort (0 when unknown)."""
    try:
        with open("/proc/self/statm") as fh:
            return int(fh.read().split()[1]) * os.sysconf("SC_PAGESIZE")
    except Exception:
        pass
    try:
        import resource

        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    except Exception:
        return 0


def _execute_job(
    job_fn: Callable[[ExperimentJob], JobResult],
    job: ExperimentJob,
    index: int,
    max_retries: int,
    backoff: Optional[BackoffPolicy] = None,
) -> Tuple[int, JobOutcome, int, float]:
    """Run one job with bounded retries, capturing any exception.

    Returns ``(index, outcome, attempts, wall_seconds)``. Module-level so
    worker processes can unpickle it; never raises (errors become
    :class:`JobFailure`), so a bad job cannot poison the pool. Retries
    are spaced by ``backoff`` (seeded exponential with jitter, keyed by
    the job index so concurrent retriers decorrelate).
    """
    label = getattr(job, "label", f"job-{index}")
    start = perf_counter()
    attempt = 0
    while True:
        attempt += 1
        try:
            result = job_fn(job)
        except Exception as exc:  # deliberate blanket capture at the seam
            if attempt <= max_retries:
                if backoff is not None:
                    delay = backoff.delay(attempt, key=index)
                    if delay > 0:
                        sleep(delay)
                continue
            wall = perf_counter() - start
            failure = JobFailure(
                label=str(label),
                index=index,
                error_type=type(exc).__name__,
                message=str(exc),
                traceback=traceback_module.format_exc(),
                attempts=attempt,
                wall_seconds=wall,
            )
            return index, failure, attempt, wall
        return index, result, attempt, perf_counter() - start


def _apply_worker_plan(worker_plan: Optional[Tuple[float, int]]) -> None:
    """Apply the worker-side legs of a chaos plan: startup delay and
    armed shared-memory attach failures."""
    if worker_plan is None:
        return
    delay, shm_failures = worker_plan
    if delay > 0:
        sleep(delay)
    if shm_failures > 0:
        from repro.traces.shared import inject_attach_failures

        inject_attach_failures(shm_failures)


def _pool_worker(conn) -> None:
    """Loop of one pooled worker process: receive ``(job_fn, job, index,
    max_retries, backoff, chaos_plan)`` messages, run them through
    :func:`_execute_job`, send the outcome back. A ``None`` message (or
    a closed pipe) shuts the worker down. Module-level so the ``spawn``
    start method can import it.

    Replies are ``(index, outcome, attempts, wall, rss_bytes)`` — the
    RSS reading feeds the parent-side memory watchdog. If an outcome
    cannot travel back (unpicklable result), a :class:`JobFailure`
    describing the transport error is sent instead — the parent never
    hangs waiting for a reply.
    """
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message is None:
                break
            job_fn, job, index, max_retries, backoff, worker_plan = message
            _apply_worker_plan(worker_plan)
            index, outcome, n_attempts, wall = _execute_job(
                job_fn, job, index, max_retries, backoff
            )
            try:
                conn.send((index, outcome, n_attempts, wall, _rss_bytes()))
            except Exception as exc:  # result transport failure
                label = getattr(job, "label", f"job-{index}")
                failure = JobFailure(
                    label=str(label),
                    index=index,
                    error_type=type(exc).__name__,
                    message=f"job result could not be sent back: {exc}",
                    traceback=traceback_module.format_exc(),
                    attempts=n_attempts,
                    wall_seconds=wall,
                )
                conn.send((index, failure, n_attempts, wall, _rss_bytes()))
    finally:
        conn.close()


class _PoolWorker:
    """Parent-side handle of one worker process and its message pipe."""

    __slots__ = ("process", "conn")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn

    def stop(self) -> None:
        """Politely ask the worker to exit (it is idle: the sentinel is
        read immediately)."""
        try:
            self.conn.send(None)
        except Exception:
            pass

    def kill(self) -> None:
        """Forcibly terminate the worker process."""
        try:
            self.process.terminate()
        except Exception:
            pass

    def sigkill(self) -> None:
        """SIGKILL the worker process (chaos: no cleanup, no warning)."""
        try:
            self.process.kill()
        except Exception:
            pass

    def signal(self, signum: int) -> bool:
        """Send a raw signal (chaos stalls); False when delivery failed."""
        try:
            os.kill(self.process.pid, signum)
        except Exception:
            return False
        return True

    def reap(self, timeout: float = 1.0) -> None:
        self.process.join(timeout)
        try:
            self.conn.close()
        except Exception:
            pass


class _BusyJob:
    """Parent-side state of one in-flight submission."""

    __slots__ = (
        "worker", "submitted", "plan", "chaos_killed", "stalled", "resume_at",
    )

    def __init__(self, worker: _PoolWorker, submitted: float,
                 plan: Optional[ChaosPlan]) -> None:
        self.worker = worker
        self.submitted = submitted
        self.plan = plan
        self.chaos_killed = False
        self.stalled = False
        self.resume_at: Optional[float] = None


class ExperimentRunner:
    """Run experiment jobs across processes, results in input order.

    Parameters
    ----------
    workers:
        Worker process count. ``None`` = one per CPU (capped at the job
        count); ``1`` = run inline in this process, with no
        multiprocessing at all (deterministic, debugger-friendly, and the
        right choice inside already-parallel harnesses).
    max_retries:
        Extra attempts per job after its first failure, covering both
        in-worker exceptions (retried inside the worker, spaced by
        ``retry_backoff``) and parent-side resubmissions after a worker
        crash or per-job timeout. A deterministic failure therefore
        fails ``max_retries + 1`` times; the knob exists for transient
        causes (OOM kills, flaky I/O, chaos).
    job_timeout:
        Per-job wall-clock budget in seconds, covering every attempt of
        one submission. In pooled mode an overrunning job's worker is
        terminated on the spot and replaced with a fresh one, and the
        job is resubmitted while retry budget remains, else reported as
        a :class:`JobFailure` with ``error_type="TimeoutError"``. Inline
        mode cannot preempt a running job, so the timeout is applied
        after the fact: a job whose wall time exceeded the budget is
        reported as timed out even if it eventually returned.
    on_error:
        ``"raise"`` (default) stops submitting after the first failure,
        drains in-flight jobs, and raises :class:`SuiteError` carrying
        the partial report. ``"collect"`` runs every job and returns a
        full report with the failures listed.
    chaos:
        Optional :class:`~repro.core.chaos.ChaosPolicy`: the runner
        injects the policy's seeded kills/stalls/delays/attach-failures
        into its own pool while the suite runs. Chaos-injected kills are
        budget-exempt (resubmitted without consuming ``max_retries``),
        capped at the policy's ``max_faults_per_job``. Inline mode
        applies only the worker-side legs (delays, attach failures).
    suite_deadline:
        Optional whole-suite wall-clock budget in seconds. When it
        expires the runner stops submitting, abandons in-flight jobs and
        returns the completed results as a partial report with
        ``deadline_exceeded=True`` — valid, and resumable when a journal
        is attached — instead of overrunning.
    rss_limit_mb:
        Optional per-worker resident-set watchdog. A worker whose RSS
        exceeds the limit after a job is recycled (stopped and replaced
        with a fresh process) before it can drag the host into swap; the
        completed job is kept.
    retry_backoff:
        The :class:`~repro.core.backoff.BackoffPolicy` spacing retry
        attempts and crash resubmissions (default
        :data:`DEFAULT_RETRY_BACKOFF`; the same helper drives the
        drive-level fault retry ladder, so all backoff in the repo
        shares one implementation).

    Pooled mode runs one long-lived worker process per slot, each driven
    over its own duplex pipe (no ``multiprocessing.Pool``). That makes a
    worker's death observable: a worker killed mid-job (OOM killer,
    ``SIGKILL``, hard crash) is detected via its exit code, the worker
    respawned, and the job resubmitted (or reported as a
    :class:`JobFailure` with ``error_type="WorkerCrashed"`` once the
    retry budget is spent) instead of hanging the suite forever waiting
    on a result that will never arrive.
    """

    #: Seconds between polls of outstanding async results in pooled mode.
    poll_interval = 0.02

    def __init__(
        self,
        workers: Optional[int] = None,
        max_retries: int = 0,
        job_timeout: Optional[float] = None,
        on_error: str = "raise",
        chaos: Optional[ChaosPolicy] = None,
        suite_deadline: Optional[float] = None,
        rss_limit_mb: Optional[float] = None,
        retry_backoff: Optional[BackoffPolicy] = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise SimulationError(f"workers must be >= 1, got {workers!r}")
        if max_retries < 0:
            raise SimulationError(f"max_retries must be >= 0, got {max_retries!r}")
        if job_timeout is not None and job_timeout <= 0:
            raise SimulationError(f"job_timeout must be > 0, got {job_timeout!r}")
        if on_error not in ("raise", "collect"):
            raise SimulationError(
                f"on_error must be 'raise' or 'collect', got {on_error!r}"
            )
        if chaos is not None and not isinstance(chaos, ChaosPolicy):
            raise SimulationError(
                f"chaos must be a ChaosPolicy or None, got {type(chaos).__name__}"
            )
        if suite_deadline is not None and suite_deadline <= 0:
            raise ResourceGuardError(
                f"suite_deadline must be > 0, got {suite_deadline!r}"
            )
        if rss_limit_mb is not None and rss_limit_mb <= 0:
            raise ResourceGuardError(
                f"rss_limit_mb must be > 0, got {rss_limit_mb!r}"
            )
        self.workers = workers
        self.max_retries = max_retries
        self.job_timeout = job_timeout
        self.on_error = on_error
        self.chaos = chaos if chaos is not None and chaos.active else None
        self.suite_deadline = suite_deadline
        self.rss_limit_mb = rss_limit_mb
        self.retry_backoff = (
            retry_backoff if retry_backoff is not None else DEFAULT_RETRY_BACKOFF
        )

    def _worker_count(self, n_jobs: int) -> int:
        workers = self.workers if self.workers is not None else (os.cpu_count() or 1)
        return max(1, min(workers, n_jobs))

    def run(
        self,
        jobs: Sequence[ExperimentJob],
        progress: Optional[ProgressCallback] = None,
    ) -> List[JobResult]:
        """Execute every job; the i-th result belongs to the i-th job.

        Thin wrapper over :meth:`run_suite` that returns only the
        successful results. Under the default ``on_error="raise"`` any
        failure surfaces as :class:`SuiteError`; with
        ``on_error="collect"`` failed jobs are silently absent from the
        returned list — use :meth:`run_suite` when you need the
        failures.
        """
        return list(self.run_suite(jobs, progress=progress).results)

    def run_suite(
        self,
        jobs: Sequence[ExperimentJob],
        progress: Optional[ProgressCallback] = None,
        job_fn: Optional[Callable[[ExperimentJob], JobResult]] = None,
        journal=None,
        result_decoder: Optional[Callable[[Mapping[str, Any]], Any]] = None,
    ) -> SuiteReport:
        """Execute the jobs and report everything that happened.

        ``job_fn`` defaults to :func:`run_job`; it is a seam for tests
        and for suites whose unit of work is not a disk simulation.

        ``journal`` is an optional
        :class:`~repro.core.journal.SuiteJournal` opened over these
        jobs: jobs it already records are skipped (their journaled
        results merged in place, counted in
        ``resilience["journal.resumed_jobs"]``), and each newly
        completed job is durably appended before the suite moves on.

        ``result_decoder`` rebuilds a journaled record into its outcome
        object on resume (default: a :class:`JobResult`); sharded runs
        pass :meth:`ShardResult.from_dict`.
        """
        jobs = list(jobs)
        fn = job_fn if job_fn is not None else run_job
        decode = (
            result_decoder
            if result_decoder is not None
            else lambda record: _dataclass_from_record(JobResult, record)
        )
        start = perf_counter()
        n = len(jobs)
        counters = MetricsRegistry()
        outcomes: List[Optional[JobOutcome]] = [None] * n
        attempts = [0] * n
        done = 0

        # Resume: merge journaled results before any execution.
        if journal is not None:
            resumed = journal.completed_results()
            for index in sorted(resumed):
                outcomes[index] = decode(resumed[index])
            if resumed:
                counters.counter("journal.resumed_jobs").inc(len(resumed))
            if getattr(journal, "recovered_torn_line", False):
                counters.counter("journal.torn_records_dropped").inc()
            for index in sorted(resumed):
                done += 1
                if progress is not None:
                    progress(done, n, outcomes[index])

        pending = [i for i in range(n) if outcomes[i] is None]
        workers = self._worker_count(len(pending)) if pending else 1
        deadline_at = (
            start + self.suite_deadline if self.suite_deadline is not None else None
        )

        def resolve(index: int, outcome: JobOutcome, n_attempts: int) -> None:
            nonlocal done
            outcomes[index] = outcome
            attempts[index] = n_attempts
            done += 1
            if (
                journal is not None
                and not isinstance(outcome, JobFailure)
                and getattr(outcome, "ok", True)
            ):
                journal.record(index, outcome.as_dict())
                counters.counter("journal.recorded").inc()
            if progress is not None:
                progress(done, n, outcome)

        if pending:
            if workers == 1:
                self._run_inline(jobs, fn, pending, resolve, counters, deadline_at)
            else:
                self._run_pool(
                    jobs, fn, pending, resolve, counters, deadline_at, workers
                )
        deadline_exceeded = counters.counters.get("suite.deadline_hits") is not None
        resilience = {
            name: counter.value
            for name, counter in sorted(counters.counters.items())
            if counter.value
        }
        report = SuiteReport(
            results=tuple(
                o
                for o in outcomes
                if o is not None and not isinstance(o, JobFailure)
            ),
            failures=tuple(o for o in outcomes if isinstance(o, JobFailure)),
            n_jobs=n,
            workers=workers,
            retries=sum(max(0, a - 1) for a in attempts),
            wall_seconds=perf_counter() - start,
            deadline_exceeded=deadline_exceeded,
            resilience=resilience or None,
        )
        if report.failures and self.on_error == "raise":
            first = report.failures[0]
            raise SuiteError(
                f"suite job {first.label!r} failed after {first.attempts} "
                f"attempt(s): {first.error_type}: {first.message}",
                report=report,
            )
        return report

    def run_sharded(
        self,
        jobs: Sequence[ExperimentJob],
        shard_size: int = 4,
        progress: Optional[ProgressCallback] = None,
        job_fn: Optional[Callable[[ExperimentJob], JobResult]] = None,
        journal=None,
    ) -> SuiteReport:
        """Execute the jobs in contiguous shards of ``shard_size``.

        The sharded mode of the fleet subsystem: jobs (one per fleet
        drive) are sliced into :class:`JobShard` units, the shards are
        fanned across the worker pool (one zero-pickle dispatch per
        shard instead of per job), and the shard outcomes are flattened
        back into input order and merged into one ordinary
        :class:`SuiteReport`.

        **Determinism guarantee** (normative, asserted by tests and
        ``BENCH_fleet.json``): every member job is simulated exactly
        once with its own seed, and the merged report's
        :meth:`SuiteReport.canonical_json` is byte-identical whatever
        the worker count or ``shard_size`` — only wall-clock and
        environment fields may differ.

        ``journal`` must have been opened over ``shard_jobs(jobs,
        shard_size)`` (the shard is the checkpoint unit); resuming with
        a different ``shard_size`` changes the fingerprints and the
        journal refuses them. Shards with failed members are not
        journaled, so a resume re-runs them. ``shard_size`` must never
        be derived from machine properties (CPU count), or journals
        stop being portable across hosts.
        """
        jobs = list(jobs)
        n = len(jobs)
        start = perf_counter()
        shards = shard_jobs(jobs, shard_size)
        fn = job_fn if job_fn is not None else run_job
        inner = ExperimentRunner(
            workers=self.workers,
            max_retries=self.max_retries,
            job_timeout=self.job_timeout,
            on_error="collect",
            chaos=self.chaos,
            suite_deadline=self.suite_deadline,
            rss_limit_mb=self.rss_limit_mb,
            retry_backoff=self.retry_backoff,
        )

        shard_progress: Optional[ProgressCallback] = None
        if progress is not None:
            member_done = [0]

            def shard_progress(done: int, total: int, outcome: Any) -> None:
                members = (
                    outcome.outcomes
                    if isinstance(outcome, ShardResult)
                    else (outcome,)
                )
                for member in members:
                    member_done[0] += 1
                    progress(member_done[0], n, member)

        shard_report = inner.run_suite(
            shards,
            progress=shard_progress,
            job_fn=_ShardRunner(fn, self.max_retries, self.retry_backoff),
            journal=journal,
            result_decoder=ShardResult.from_dict,
        )

        outcomes: List[Optional[JobOutcome]] = [None] * n
        for shard_result in shard_report.results:
            for index, outcome in zip(shard_result.indices, shard_result.outcomes):
                outcomes[index] = outcome
        for failure in shard_report.failures:
            # The whole shard failed before producing member outcomes
            # (worker crash, timeout, unpicklable dispatch): expand to
            # one per-member failure so accounting stays per job.
            for index in shards[failure.index].indices:
                outcomes[index] = JobFailure(
                    label=getattr(jobs[index], "label", f"job-{index}"),
                    index=index,
                    error_type=failure.error_type,
                    message=failure.message,
                    traceback=failure.traceback,
                    attempts=failure.attempts,
                    wall_seconds=failure.wall_seconds,
                )
        report = SuiteReport(
            results=tuple(o for o in outcomes if isinstance(o, JobResult)),
            failures=tuple(o for o in outcomes if isinstance(o, JobFailure)),
            n_jobs=n,
            workers=shard_report.workers,
            retries=shard_report.retries,
            wall_seconds=perf_counter() - start,
            deadline_exceeded=shard_report.deadline_exceeded,
            resilience=shard_report.resilience,
        )
        if report.failures and self.on_error == "raise":
            first = report.failures[0]
            raise SuiteError(
                f"suite job {first.label!r} failed after {first.attempts} "
                f"attempt(s): {first.error_type}: {first.message}",
                report=report,
            )
        return report

    # ------------------------------------------------------------------
    # Execution strategies
    # ------------------------------------------------------------------

    def _apply_timeout(
        self, outcome: JobOutcome, index: int, wall: float
    ) -> JobOutcome:
        """Post-hoc timeout for inline mode (cannot preempt in-process)."""
        if (
            self.job_timeout is None
            or wall <= self.job_timeout
            or isinstance(outcome, JobFailure)
        ):
            return outcome
        return self._timeout_failure(outcome.label, index, wall)

    def _timeout_failure(
        self, label: str, index: int, wall: float, attempts: int = 1
    ) -> JobFailure:
        return JobFailure(
            label=label,
            index=index,
            error_type="TimeoutError",
            message=(
                f"job exceeded the per-job timeout of {self.job_timeout} s "
                f"(ran {wall:.3f} s)"
            ),
            traceback="",
            attempts=attempts,
            wall_seconds=wall,
        )

    def _run_inline(
        self,
        jobs: List[ExperimentJob],
        fn: Callable[[ExperimentJob], JobResult],
        pending: List[int],
        resolve: Callable[[int, JobOutcome, int], None],
        counters: MetricsRegistry,
        deadline_at: Optional[float],
    ) -> None:
        for i in pending:
            if deadline_at is not None and perf_counter() >= deadline_at:
                counters.counter("suite.deadline_hits").inc()
                return
            if self.chaos is not None:
                # Inline mode has no worker process to kill or stall;
                # only the worker-side chaos legs apply.
                plan = self.chaos.plan(i, 1)
                if plan.delay > 0:
                    counters.counter("chaos.delays").inc()
                if plan.shm_failures > 0:
                    counters.counter("chaos.shm_failures").inc()
                _apply_worker_plan((plan.delay, plan.shm_failures))
            _, outcome, n_attempts, wall = _execute_job(
                fn, jobs[i], i, self.max_retries, self.retry_backoff
            )
            timed = self._apply_timeout(outcome, i, wall)
            if isinstance(timed, JobFailure) and timed.error_type == "TimeoutError":
                counters.counter("suite.timeouts").inc()
            resolve(i, timed, n_attempts)
            if isinstance(timed, JobFailure) and self.on_error == "raise":
                return

    def _run_pool(
        self,
        jobs: List[ExperimentJob],
        fn: Callable[[ExperimentJob], JobResult],
        pending: List[int],
        resolve: Callable[[int, JobOutcome, int], None],
        counters: MetricsRegistry,
        deadline_at: Optional[float],
        workers: int,
    ) -> None:
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        queue = deque(pending)
        retry_at: Dict[int, float] = {}       # earliest resubmission time
        submissions: Dict[int, int] = {}      # pool submissions per job
        prior_attempts: Dict[int, int] = {}   # attempts spent on dead submissions
        hard_faults: Dict[int, int] = {}      # crash/timeouts charged to budget
        chaos_faults: Dict[int, int] = {}     # budget-exempt injected faults
        stop_submitting = False

        def spawn() -> _PoolWorker:
            parent_conn, child_conn = context.Pipe(duplex=True)
            process = context.Process(
                target=_pool_worker, args=(child_conn,), daemon=True
            )
            process.start()
            child_conn.close()
            return _PoolWorker(process, parent_conn)

        def crash_failure(index: int, exitcode: Any, wall: float) -> JobFailure:
            return JobFailure(
                label=getattr(jobs[index], "label", f"job-{index}"),
                index=index,
                error_type="WorkerCrashed",
                message=(
                    f"worker process exited with code {exitcode} mid-job "
                    "(killed or crashed without raising)"
                ),
                traceback="",
                attempts=prior_attempts.get(index, 0) + 1,
                wall_seconds=wall,
            )

        def requeue(index: int, entry: "_BusyJob", now: float) -> bool:
            """Resubmit a crashed/timed-out job if budget allows.

            Chaos-injected kills are budget-exempt up to the policy's
            per-job fault cap; real crashes and timeouts consume the
            normal ``max_retries`` budget. Returns True when the job was
            requeued."""
            injected = entry.chaos_killed
            if injected:
                chaos_faults[index] = chaos_faults.get(index, 0) + 1
                if chaos_faults[index] > self.chaos.max_faults_per_job:
                    injected = False  # cap reached: charge the budget
            if not injected:
                hard_faults[index] = hard_faults.get(index, 0) + 1
                if hard_faults[index] > self.max_retries:
                    return False
            prior_attempts[index] = prior_attempts.get(index, 0) + 1
            counters.counter("suite.resubmissions").inc()
            retry_at[index] = now + self.retry_backoff.delay(
                submissions.get(index, 1), key=index
            )
            queue.append(index)
            return True

        idle: List[_PoolWorker] = [spawn() for _ in range(workers)]
        # One outstanding job per worker so a submitted job starts
        # immediately and the per-job timeout clock measures execution,
        # not queueing.
        busy: Dict[int, _BusyJob] = {}
        try:
            while busy or (queue and not stop_submitting):
                now = perf_counter()
                if deadline_at is not None and now >= deadline_at:
                    # Budget spent: abandon in-flight work, return what
                    # completed. Journaled results are already durable.
                    counters.counter("suite.deadline_hits").inc()
                    for entry in busy.values():
                        entry.worker.kill()
                        entry.worker.reap()
                    busy.clear()
                    return
                resolved: List[Tuple[int, JobOutcome, int]] = []
                while idle and queue and not stop_submitting:
                    # First queued job whose backoff delay has elapsed.
                    for _ in range(len(queue)):
                        i = queue.popleft()
                        if retry_at.get(i, 0.0) <= now:
                            break
                        queue.append(i)
                    else:
                        break
                    worker = idle.pop()
                    submissions[i] = submissions.get(i, 0) + 1
                    plan: Optional[ChaosPlan] = None
                    worker_plan = None
                    if self.chaos is not None:
                        plan = self.chaos.plan(i, submissions[i])
                        if not plan.any:
                            plan = None
                        elif plan.delay > 0 or plan.shm_failures > 0:
                            worker_plan = (plan.delay, plan.shm_failures)
                            if plan.delay > 0:
                                counters.counter("chaos.delays").inc()
                            if plan.shm_failures > 0:
                                counters.counter("chaos.shm_failures").inc()
                    message = (
                        fn, jobs[i], i, self.max_retries,
                        self.retry_backoff, worker_plan,
                    )
                    try:
                        worker.conn.send(message)
                    except Exception:
                        # Dead pipe (worker died while idle): replace the
                        # worker and retry once; a second failure means the
                        # message itself cannot travel (unpicklable job).
                        worker.kill()
                        worker.reap()
                        worker = spawn()
                        try:
                            worker.conn.send(message)
                        except Exception as exc:
                            idle.append(worker)
                            resolved.append(
                                (
                                    i,
                                    JobFailure(
                                        label=getattr(jobs[i], "label", f"job-{i}"),
                                        index=i,
                                        error_type=type(exc).__name__,
                                        message=f"job could not be sent to a worker: {exc}",
                                        traceback=traceback_module.format_exc(),
                                        attempts=1,
                                        wall_seconds=0.0,
                                    ),
                                    1,
                                )
                            )
                            continue
                    busy[i] = _BusyJob(worker, perf_counter(), plan)
                now = perf_counter()
                # Parent-side chaos legs: scheduled kills and stalls.
                for i, entry in busy.items():
                    plan = entry.plan
                    if plan is None:
                        continue
                    if (
                        plan.kill_after is not None
                        and not entry.chaos_killed
                        and now - entry.submitted >= plan.kill_after
                    ):
                        entry.chaos_killed = True
                        entry.worker.sigkill()
                        counters.counter("chaos.kills").inc()
                    if (
                        plan.stall_after is not None
                        and not entry.stalled
                        and now - entry.submitted >= plan.stall_after
                    ):
                        entry.stalled = True
                        if entry.worker.signal(signal_module.SIGSTOP):
                            entry.resume_at = now + plan.stall_seconds
                            # Credit the stall against the timeout clock.
                            entry.submitted += plan.stall_seconds
                            counters.counter("chaos.stalls").inc()
                    if entry.resume_at is not None and now >= entry.resume_at:
                        entry.worker.signal(signal_module.SIGCONT)
                        entry.resume_at = None
                for i, entry in list(busy.items()):
                    worker = entry.worker
                    outcome: Optional[JobOutcome] = None
                    n_attempts = 1
                    rss = 0
                    # Check the pipe before the exit code: a worker that
                    # finished its send and then died still delivered a
                    # real outcome, which takes precedence over the crash.
                    has_result = worker.conn.poll()
                    exited = worker.process.exitcode is not None
                    if not has_result and exited:
                        has_result = worker.conn.poll()  # result raced in
                    if has_result:
                        # A stalled worker that still replied must not be
                        # parked in the idle pool frozen.
                        if entry.resume_at is not None:
                            worker.signal(signal_module.SIGCONT)
                            entry.resume_at = None
                        try:
                            _, outcome, n_attempts, _, rss = worker.conn.recv()
                        except (EOFError, OSError):
                            counters.counter("suite.worker_crashes").inc()
                            if requeue(i, entry, now):
                                outcome = None
                                del busy[i]
                            else:
                                outcome = crash_failure(
                                    i, worker.process.exitcode, now - entry.submitted
                                )
                            worker.kill()
                            worker.reap()
                            idle.append(spawn())
                            if outcome is None:
                                continue
                        else:
                            n_attempts += prior_attempts.get(i, 0)
                            idle.append(worker)
                            if (
                                self.rss_limit_mb is not None
                                and rss > self.rss_limit_mb * 1024 * 1024
                            ):
                                # Memory watchdog: retire the bloated
                                # worker before it swaps the host.
                                idle.remove(worker)
                                worker.stop()
                                worker.reap()
                                idle.append(spawn())
                                counters.counter("guard.workers_recycled").inc()
                    elif exited:
                        counters.counter("suite.worker_crashes").inc()
                        worker.reap()
                        idle.append(spawn())
                        if requeue(i, entry, now):
                            del busy[i]
                            continue
                        outcome = crash_failure(
                            i, worker.process.exitcode, now - entry.submitted
                        )
                    elif (
                        self.job_timeout is not None
                        and now - entry.submitted > self.job_timeout
                    ):
                        counters.counter("suite.timeouts").inc()
                        worker.kill()
                        worker.reap()
                        idle.append(spawn())
                        if requeue(i, entry, now):
                            del busy[i]
                            continue
                        label = getattr(jobs[i], "label", f"job-{i}")
                        outcome = self._timeout_failure(
                            label, i, now - entry.submitted,
                            attempts=prior_attempts.get(i, 0) + 1,
                        )
                    if outcome is not None:
                        del busy[i]
                        resolved.append((i, outcome, n_attempts))
                for i, outcome, n_attempts in resolved:
                    resolve(i, outcome, n_attempts)
                    if isinstance(outcome, JobFailure) and self.on_error == "raise":
                        stop_submitting = True
                if not resolved and busy:
                    sleep(self.poll_interval)
        finally:
            for entry in busy.values():
                if entry.resume_at is not None:
                    entry.worker.signal(signal_module.SIGCONT)
                entry.worker.kill()
            for worker in idle:
                worker.stop()
            for worker in idle:
                worker.reap()
            for entry in busy.values():
                entry.worker.reap()
