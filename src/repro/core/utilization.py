"""Utilization analysis: how busy the disk actually is.

The paper's first finding is that enterprise drives operate at *moderate*
utilization. :func:`analyze_utilization` quantifies that from a
busy/idle timeline: the overall busy fraction, the distribution of
windowed utilization at chosen scales (the paper's utilization-over-time
figures), and how much of the time the drive spends above high-load
thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.disk.timeline import BusyIdleTimeline
from repro.errors import AnalysisError
from repro.stats.ecdf import Ecdf
from repro.stats.moments import SampleDescription, describe


@dataclass(frozen=True)
class UtilizationAnalysis:
    """Utilization characterization of one timeline.

    Attributes
    ----------
    overall:
        Busy fraction over the whole window.
    per_scale:
        Windowed-utilization description per analysis scale (seconds).
    high_load_fraction:
        Fraction of windows (at the finest scale) at or above the
        high-load threshold.
    high_load_threshold:
        The threshold used (default 0.9).
    """

    overall: float
    per_scale: Dict[float, SampleDescription]
    high_load_fraction: float
    high_load_threshold: float

    def series(self) -> Tuple[np.ndarray, np.ndarray]:
        """(scale, mean windowed utilization) pairs, ascending scale."""
        scales = np.array(sorted(self.per_scale))
        means = np.array([self.per_scale[s].mean for s in scales])
        return scales, means


def analyze_utilization(
    timeline: BusyIdleTimeline,
    scales: Sequence[float] = (1.0, 10.0, 60.0),
    high_load_threshold: float = 0.9,
) -> UtilizationAnalysis:
    """Characterize utilization at the given window scales.

    Scales longer than the observation window are skipped; at least one
    must fit or :class:`AnalysisError` is raised.
    """
    if not scales:
        raise AnalysisError("need at least one analysis scale")
    if not 0.0 < high_load_threshold <= 1.0:
        raise AnalysisError(
            f"high_load_threshold must be in (0, 1], got {high_load_threshold!r}"
        )
    per_scale: Dict[float, SampleDescription] = {}
    for scale in scales:
        if scale <= 0:
            raise AnalysisError(f"scales must be > 0, got {scale!r}")
        if scale > timeline.span:
            continue
        per_scale[float(scale)] = describe(timeline.utilization_series(scale))
    if not per_scale:
        raise AnalysisError(
            f"no scale fits the {timeline.span:.3f}s window; pass smaller scales"
        )
    finest = min(per_scale)
    fine_series = timeline.utilization_series(finest)
    high = float(np.mean(fine_series >= high_load_threshold))
    return UtilizationAnalysis(
        overall=timeline.utilization,
        per_scale=per_scale,
        high_load_fraction=high,
        high_load_threshold=float(high_load_threshold),
    )


def utilization_ecdf(timeline: BusyIdleTimeline, scale: float) -> Ecdf:
    """ECDF of windowed utilization at one scale — the distribution behind
    the paper's utilization figures."""
    if scale > timeline.span:
        raise AnalysisError(
            f"window scale {scale!r} exceeds the {timeline.span!r}s observation span"
        )
    series = timeline.utilization_series(scale)
    if series.size == 0:
        raise AnalysisError("window scale exceeds the observation span")
    return Ecdf(series)
