"""Fleet anomaly detection over hour traces.

The operational consumer of a drive population's Hour traces is fleet
monitoring: which drives stopped behaving like themselves, or like the
population? Two complementary detectors:

* **self-anomaly** — a drive's recent traffic deviates from its own
  earlier baseline (robust z-score of the recent window against the
  drive's history): catches regime changes such as the onset of
  saturated episodes, a workload migration, or a drive going quiet;
* **population-anomaly** — a drive's overall level is extreme within
  the family (robust z-score across drives): catches the outliers the
  Lifetime analyses aggregate.

Both use median/MAD statistics so the heavy tails the paper documents
don't poison the baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import AnalysisError
from repro.traces.hourly import HourlyDataset, HourlyTrace


def _robust_z(value: float, sample: np.ndarray, scale_floor: float = 0.0) -> float:
    median = float(np.median(sample))
    mad = float(np.median(np.abs(sample - median)))
    scale = max(1.4826 * mad, scale_floor)  # MAD, floored for tiny samples
    if scale == 0:
        return 0.0 if value == median else float("inf") * np.sign(value - median)
    return (value - median) / scale


@dataclass(frozen=True)
class DriveAnomaly:
    """One flagged drive.

    Attributes
    ----------
    drive_id:
        Which drive.
    kind:
        ``'self'`` (deviates from its own history) or ``'population'``
        (deviates from the family).
    z_score:
        The robust z-score that triggered the flag (signed: positive =
        busier than baseline).
    detail:
        Human-readable one-liner.
    """

    drive_id: str
    kind: str
    z_score: float
    detail: str


def self_anomalies(
    dataset: HourlyDataset,
    recent_hours: int = 168,
    threshold: float = 3.5,
) -> List[DriveAnomaly]:
    """Drives whose recent traffic left their own baseline.

    For each drive, the mean hourly traffic of the last ``recent_hours``
    is scored against the distribution of same-length windows in the
    drive's earlier history. Requires at least three baseline windows.
    """
    if recent_hours < 1:
        raise AnalysisError(f"recent_hours must be >= 1, got {recent_hours!r}")
    if threshold <= 0:
        raise AnalysisError(f"threshold must be > 0, got {threshold!r}")
    flagged: List[DriveAnomaly] = []
    for trace in dataset:
        total = trace.total_bytes
        if total.size < 4 * recent_hours:
            continue  # not enough history for a baseline
        recent = float(total[-recent_hours:].mean())
        history = total[:-recent_hours]
        n_windows = history.size // recent_hours
        windows = history[: n_windows * recent_hours].reshape(n_windows, recent_hours)
        baseline = windows.mean(axis=1)
        if baseline.size < 3:
            continue
        # With few baseline windows the MAD is unstable; floor the scale
        # at 5% of the baseline level so ordinary weekly wobble never
        # produces extreme scores.
        floor = 0.05 * abs(float(np.median(baseline)))
        z = _robust_z(recent, baseline, scale_floor=floor)
        if abs(z) >= threshold:
            direction = "surged" if z > 0 else "collapsed"
            flagged.append(
                DriveAnomaly(
                    drive_id=trace.drive_id,
                    kind="self",
                    z_score=float(z),
                    detail=(
                        f"recent {recent_hours} h mean {direction} to "
                        f"{recent:.3g} B/h vs its own baseline "
                        f"(robust z = {z:.1f})"
                    ),
                )
            )
    return sorted(flagged, key=lambda a: -abs(a.z_score))


def population_anomalies(
    dataset: HourlyDataset, threshold: float = 3.5
) -> List[DriveAnomaly]:
    """Drives whose overall level is extreme within the family.

    Levels are log-transformed before scoring (per-drive load is
    lognormal-ish across the family, per the Lifetime analyses), so the
    detector flags genuine outliers rather than the whole upper tail.
    """
    if threshold <= 0:
        raise AnalysisError(f"threshold must be > 0, got {threshold!r}")
    if len(dataset) < 4:
        raise AnalysisError("population scoring needs at least 4 drives")
    means = dataset.mean_throughputs()
    positive_floor = means[means > 0]
    if positive_floor.size == 0:
        return []
    floor = positive_floor.min() / 10.0
    logs = np.log(np.maximum(means, floor))
    flagged: List[DriveAnomaly] = []
    for trace, level in zip(dataset, logs):
        others = logs[logs != level] if np.sum(logs == level) == 1 else logs
        z = _robust_z(float(level), others)
        if abs(z) >= threshold:
            direction = "far above" if z > 0 else "far below"
            flagged.append(
                DriveAnomaly(
                    drive_id=trace.drive_id,
                    kind="population",
                    z_score=float(z),
                    detail=(
                        f"mean throughput {direction} the family "
                        f"(robust z = {z:.1f} in log space)"
                    ),
                )
            )
    return sorted(flagged, key=lambda a: -abs(a.z_score))


def inject_regime_change(
    trace: HourlyTrace, start_hour: int, multiplier: float
) -> HourlyTrace:
    """A copy of ``trace`` whose traffic is scaled by ``multiplier`` from
    ``start_hour`` on — the ground-truth generator for detector tests."""
    if start_hour < 0 or start_hour >= trace.hours:
        raise AnalysisError(
            f"start_hour must be in [0, {trace.hours}), got {start_hour!r}"
        )
    if multiplier < 0:
        raise AnalysisError(f"multiplier must be >= 0, got {multiplier!r}")
    scale = np.ones(trace.hours)
    scale[start_hour:] = multiplier
    return HourlyTrace(
        drive_id=trace.drive_id,
        read_bytes=trace.read_bytes * scale,
        write_bytes=trace.write_bytes * scale,
        start_hour=trace.start_hour,
    )
