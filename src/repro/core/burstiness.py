"""Burstiness across time scales: the paper's central analysis.

"The workload arriving at the disk is bursty across all time scales
evaluated." Three complementary measurements make that claim testable:

* the **IDC curve** — index of dispersion for counts versus aggregation
  scale: flat at 1 for Poisson, growing for scale-spanning burstiness;
* **Hurst estimates** — aggregate-variance and R/S, both ≈ 0.5 for
  memoryless traffic and 0.7-0.9 for long-range-dependent disk traffic;
* **interarrival CV** and the count autocorrelation's integrated time as
  short-scale corroboration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import AnalysisError, StatsError
from repro.stats.autocorr import integrated_autocorrelation_time
from repro.stats.dispersion import idc_curve
from repro.stats.hurst import hurst_aggregate_variance, hurst_rescaled_range
from repro.traces.millisecond import RequestTrace

#: Default dyadic ladder of aggregation factors, base scale -> ~1000x.
DEFAULT_FACTORS: Tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


@dataclass(frozen=True)
class BurstinessAnalysis:
    """Multi-scale burstiness characterization of one trace.

    Attributes
    ----------
    scales:
        Aggregation scales in seconds at which the IDC was measured.
    idc:
        Index of dispersion for counts at each scale.
    idc_growth:
        ``idc[-1] / idc[0]`` — how much burstiness compounds from the
        finest to the coarsest usable scale (≈ 1 for Poisson).
    hurst_variance, hurst_rs:
        Hurst estimates by aggregate-variance and R/S.
    interarrival_cv:
        Coefficient of variation of the interarrival times (1 for
        Poisson).
    autocorrelation_time:
        Integrated autocorrelation time of the base-scale counts, in
        bins (≈ 1 for uncorrelated counts).
    """

    scales: np.ndarray
    idc: np.ndarray
    idc_growth: float
    hurst_variance: float
    hurst_rs: float
    interarrival_cv: float
    autocorrelation_time: float

    @property
    def is_bursty_across_scales(self) -> bool:
        """The paper's headline property, as a predicate: the IDC at the
        coarsest scale is at least 5x its finest-scale value *and* at
        least 5 in absolute terms."""
        return bool(self.idc_growth >= 5.0 and self.idc[-1] >= 5.0)


def analyze_burstiness(
    trace: RequestTrace,
    base_scale: float = 0.01,
    factors: Sequence[int] = DEFAULT_FACTORS,
    max_acf_lag: int = 200,
) -> BurstinessAnalysis:
    """Measure burstiness of a trace's arrival process across scales.

    ``base_scale`` is the finest bin width in seconds; ``factors`` the
    dyadic ladder above it. Traces too short or too sparse for a scale
    simply skip it (at least two usable scales are required).
    """
    if len(trace) < 16:
        raise AnalysisError(
            f"trace {trace.label!r} has {len(trace)} requests; "
            "burstiness analysis needs at least 16"
        )
    try:
        scales, idc = idc_curve(trace.times, trace.span, base_scale, list(factors))
    except StatsError as exc:
        raise AnalysisError(str(exc)) from exc
    if scales.size < 2:
        raise AnalysisError("fewer than two usable aggregation scales")

    counts = trace.counts(base_scale)
    usable_factors = [int(round(s / base_scale)) for s in scales]
    hurst_var = hurst_aggregate_variance(counts, usable_factors)
    try:
        hurst_rs = hurst_rescaled_range(counts)
    except Exception:
        hurst_rs = float("nan")

    gaps = trace.interarrival_times()
    cv = float(gaps.std(ddof=1) / gaps.mean()) if gaps.mean() > 0 else float("nan")

    act = integrated_autocorrelation_time(counts, max_lag=min(max_acf_lag, counts.size - 1))

    finite = np.isfinite(idc)
    growth = (
        float(idc[finite][-1] / idc[finite][0]) if finite.sum() >= 2 and idc[finite][0] > 0 else float("nan")
    )
    return BurstinessAnalysis(
        scales=scales,
        idc=idc,
        idc_growth=growth,
        hurst_variance=hurst_var,
        hurst_rs=hurst_rs,
        interarrival_cv=cv,
        autocorrelation_time=act,
    )


def compare_burstiness(
    traces: Sequence[RequestTrace],
    base_scale: float = 0.01,
    factors: Sequence[int] = DEFAULT_FACTORS,
) -> dict:
    """Burstiness analyses for several traces, keyed by label — the input
    of the paper's bursty-vs-Poisson comparison figure."""
    results = {}
    for trace in traces:
        results[trace.label] = analyze_burstiness(trace, base_scale, factors)
    return results
