"""Idle-time prediction: the mean residual life of an idle interval.

The operational question behind "long stretches of idleness" is: *given
the drive has already been idle for ``a`` seconds, how much longer will
it stay idle?* For memoryless (exponential) idle times the answer never
changes; for the heavy-tailed idle times disks actually exhibit, the
expected remaining idle time *grows* with the age — the longer it has
been quiet, the longer it will stay quiet. That increasing
mean-residual-life (MRL) curve is what makes conditional policies
(spin down / start background work *after* surviving a probation
period) work, and this module estimates it empirically.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.disk.timeline import BusyIdleTimeline
from repro.errors import AnalysisError


class IdlePredictor:
    """Empirical conditional structure of idle-interval lengths.

    Fit on a sample of observed idle-interval lengths; answers
    conditional queries by restricting to the intervals that survived
    the conditioning age.
    """

    def __init__(self, intervals: Sequence[float]) -> None:
        values = np.asarray(intervals, dtype=np.float64)
        values = values[~np.isnan(values)]
        if values.size < 8:
            raise AnalysisError(
                f"idle predictor needs >= 8 intervals, got {values.size}"
            )
        if np.any(values <= 0):
            raise AnalysisError("idle intervals must be positive")
        self._sorted = np.sort(values)
        # Suffix sums for O(log n) conditional means.
        self._suffix_sums = np.concatenate(
            [np.cumsum(self._sorted[::-1])[::-1], [0.0]]
        )

    @classmethod
    def from_timeline(cls, timeline: BusyIdleTimeline) -> "IdlePredictor":
        """Fit on a timeline's idle intervals."""
        return cls(timeline.idle_periods())

    @property
    def n(self) -> int:
        """Number of intervals the predictor was fit on."""
        return int(self._sorted.size)

    def survival(self, age: float) -> float:
        """P(interval length > age)."""
        if age < 0:
            raise AnalysisError(f"age must be >= 0, got {age!r}")
        survivors = self._sorted.size - np.searchsorted(self._sorted, age, side="right")
        return survivors / self._sorted.size

    def mean_residual_life(self, age: float) -> float:
        """E[length - age | length > age] — the MRL curve.

        NaN when no observed interval survives the age (conditioning on
        an event never seen).
        """
        if age < 0:
            raise AnalysisError(f"age must be >= 0, got {age!r}")
        first = int(np.searchsorted(self._sorted, age, side="right"))
        survivors = self._sorted.size - first
        if survivors == 0:
            return float("nan")
        return float(self._suffix_sums[first] / survivors - age)

    def mrl_curve(self, ages: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
        """The MRL evaluated at each age: ``(ages, mrl_values)``."""
        ages = np.asarray(sorted(ages), dtype=np.float64)
        if ages.size == 0:
            raise AnalysisError("need at least one age")
        return ages, np.array([self.mean_residual_life(float(a)) for a in ages])

    def remaining_at_least(self, age: float, duration: float) -> float:
        """P(length >= age + duration | length > age) — will the lull
        last another ``duration`` seconds, given it has lasted ``age``?"""
        if duration < 0:
            raise AnalysisError(f"duration must be >= 0, got {duration!r}")
        base = self.survival(age)
        if base == 0:
            return float("nan")
        joint = self._sorted.size - np.searchsorted(
            self._sorted, age + duration, side="left"
        )
        return float(joint / self._sorted.size / base)

    def is_heavy_tailed(self, short_age: float = 0.0, long_age_quantile: float = 0.75) -> bool:
        """The MRL diagnostic: does expected remaining idle time grow
        with age? True means conditional waiting pays — the signature of
        a heavier-than-exponential tail. Compares the MRL at
        ``short_age`` with the MRL at the sample's ``long_age_quantile``."""
        long_age = float(np.quantile(self._sorted, long_age_quantile))
        early = self.mean_residual_life(short_age)
        late = self.mean_residual_life(long_age)
        if not (np.isfinite(early) and np.isfinite(late)):
            return False
        return late > early
