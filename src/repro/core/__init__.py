"""The paper's contribution: multi-time-scale disk workload characterization.

This package is the analysis layer a storage analyst actually calls. It
consumes the trace containers (:mod:`repro.traces`), drives the disk
substrate (:mod:`repro.disk`) where busy/idle ground truth is needed, and
applies the statistics substrate (:mod:`repro.stats`) to answer the
paper's questions at each time scale:

* *How utilized are the drives?* — :mod:`repro.core.utilization`
* *How much idleness is there, and in what shape?* —
  :mod:`repro.core.idleness`, :mod:`repro.core.busyness`
* *How bursty is the arriving workload across time scales?* —
  :mod:`repro.core.burstiness`
* *How do read and write traffic behave over time?* —
  :mod:`repro.core.traffic`
* *What do the hour- and lifetime-granularity data show across a drive
  population?* — :mod:`repro.core.hour_analysis`,
  :mod:`repro.core.lifetime_analysis`
* *Do the scales tell one consistent story?* —
  :mod:`repro.core.timescales`
"""

from repro.core.summary import WorkloadSummary, summarize_trace
from repro.core.utilization import UtilizationAnalysis, analyze_utilization
from repro.core.idleness import IdlenessAnalysis, analyze_idleness
from repro.core.busyness import BusynessAnalysis, analyze_busyness
from repro.core.burstiness import BurstinessAnalysis, analyze_burstiness
from repro.core.traffic import TrafficDynamics, analyze_traffic
from repro.core.hour_analysis import HourScaleAnalysis, analyze_hour_scale
from repro.core.lifetime_analysis import FamilyAnalysis, analyze_family
from repro.core.timescales import CrossScaleStudy, MillisecondStudy, run_millisecond_study
from repro.core.background import (
    BackgroundRunReport,
    BackgroundTask,
    ScrubPlan,
    chunk_size_sweep,
    plan_media_scrub,
    run_in_idle,
    scrub_latent_regions,
)
from repro.core.comparison import ComparisonResult, compare_studies, feature_vector
from repro.core.idleness import chunks_available
from repro.core.latency import (
    DegradedTailAnalysis,
    LatencyAnalysis,
    TierTailAnalysis,
    analyze_degraded_tail,
    analyze_latency,
    analyze_tier_tail,
    queue_depth_series,
    response_ecdf,
    tail_inflation,
)
from repro.core.prediction import IdlePredictor
from repro.core.dossier import render_family_report, render_hour_report, render_study_report
from repro.core.spatial_analysis import SpatialAnalysis, analyze_spatial, seek_distance_ecdf, zone_traffic
from repro.core.streaming import StreamingCharacterizer, characterize_events
from repro.core.forecast import ForecastScore, flat_mean_forecast, score_forecast, seasonal_ewma_forecast, seasonal_naive_forecast
from repro.core.anomaly import DriveAnomaly, inject_regime_change, population_anomalies, self_anomalies
from repro.core.suite import run_suite, suite_table
from repro.core.backoff import BackoffPolicy, backoff_delays
from repro.core.chaos import (
    ChaosPlan,
    ChaosPolicy,
    available_chaos_policies,
    get_chaos_policy,
)
from repro.core.journal import SuiteJournal, job_fingerprint, suite_fingerprint
from repro.core.runner import (
    ExperimentJob,
    ExperimentRunner,
    JobFailure,
    JobResult,
    SuiteReport,
    derive_seeds,
    experiment_matrix,
    run_job,
)
from repro.core.report import Table, ascii_plot, render_series

__all__ = [
    "WorkloadSummary",
    "summarize_trace",
    "UtilizationAnalysis",
    "analyze_utilization",
    "IdlenessAnalysis",
    "analyze_idleness",
    "BusynessAnalysis",
    "analyze_busyness",
    "BurstinessAnalysis",
    "analyze_burstiness",
    "TrafficDynamics",
    "analyze_traffic",
    "HourScaleAnalysis",
    "analyze_hour_scale",
    "FamilyAnalysis",
    "analyze_family",
    "CrossScaleStudy",
    "MillisecondStudy",
    "run_millisecond_study",
    "Table",
    "ascii_plot",
    "render_series",
    "BackgroundTask",
    "BackgroundRunReport",
    "ScrubPlan",
    "run_in_idle",
    "chunk_size_sweep",
    "plan_media_scrub",
    "scrub_latent_regions",
    "chunks_available",
    "ComparisonResult",
    "compare_studies",
    "feature_vector",
    "LatencyAnalysis",
    "analyze_latency",
    "queue_depth_series",
    "response_ecdf",
    "DegradedTailAnalysis",
    "analyze_degraded_tail",
    "TierTailAnalysis",
    "analyze_tier_tail",
    "tail_inflation",
    "IdlePredictor",
    "render_study_report",
    "render_hour_report",
    "render_family_report",
    "SpatialAnalysis",
    "analyze_spatial",
    "zone_traffic",
    "seek_distance_ecdf",
    "StreamingCharacterizer",
    "characterize_events",
    "ForecastScore",
    "seasonal_naive_forecast",
    "seasonal_ewma_forecast",
    "flat_mean_forecast",
    "score_forecast",
    "DriveAnomaly",
    "self_anomalies",
    "population_anomalies",
    "inject_regime_change",
    "run_suite",
    "suite_table",
    "BackoffPolicy",
    "backoff_delays",
    "ChaosPlan",
    "ChaosPolicy",
    "available_chaos_policies",
    "get_chaos_policy",
    "SuiteJournal",
    "job_fingerprint",
    "suite_fingerprint",
    "ExperimentJob",
    "ExperimentRunner",
    "JobFailure",
    "JobResult",
    "SuiteReport",
    "derive_seeds",
    "experiment_matrix",
    "run_job",
]
