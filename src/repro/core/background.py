"""Background-task execution in idle time.

The payoff of the idleness characterization: scheduling background work
(media scans, scrubbing, rebuilds) into the idle intervals without
touching foreground requests. :func:`run_in_idle` simulates the standard
non-clairvoyant policy — start a fixed-size chunk whenever the drive has
been idle long enough to pay the setup cost, abandon nothing midway
because chunks are sized to fit — and reports progress, overhead and
completion time against a timeline's idle structure.

The chunk granularity is the knob: small chunks harvest short intervals
but pay setup more often; large chunks only fit the long-interval tail —
which is exactly why the *shape* of the idle-time distribution (not just
its total) matters, the point the paper's idleness analysis makes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.disk.timeline import BusyIdleTimeline
from repro.errors import AnalysisError


def _sanitized_idle_intervals(timeline: BusyIdleTimeline) -> List[Tuple[float, float]]:
    """The timeline's idle intervals in time order with degenerate
    (zero- or negative-length) entries dropped.

    :class:`BusyIdleTimeline` already produces sorted positive-length
    intervals, but ``run_in_idle`` accepts any duck-typed timeline (test
    doubles, pre-computed interval lists); without sanitizing, an
    unsorted input mis-orders resumptions and mis-states the completion
    time, and a zero-length interval can divide work by zero downstream.
    """
    pairs = [(float(s), float(e)) for s, e in timeline.idle_intervals()]
    pairs.sort()
    return [(s, e) for s, e in pairs if e > s]


@dataclass(frozen=True)
class BackgroundTask:
    """A divisible background job.

    Attributes
    ----------
    name:
        Label for reports.
    total_work:
        Disk-seconds of work the whole job needs.
    chunk_seconds:
        Atomic unit of execution; a chunk only starts if it fits in the
        remaining idle interval.
    setup_seconds:
        One-time cost on each *resumption* (first chunk in an interval):
        repositioning, state restore.
    """

    name: str
    total_work: float
    chunk_seconds: float
    setup_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.total_work <= 0:
            raise AnalysisError(f"total_work must be > 0, got {self.total_work!r}")
        if self.chunk_seconds <= 0:
            raise AnalysisError(
                f"chunk_seconds must be > 0, got {self.chunk_seconds!r}"
            )
        if self.setup_seconds < 0:
            raise AnalysisError(
                f"setup_seconds must be >= 0, got {self.setup_seconds!r}"
            )


@dataclass(frozen=True)
class BackgroundRunReport:
    """Outcome of running one task over one timeline's idle intervals.

    Attributes
    ----------
    task:
        The task that ran.
    completed_work:
        Disk-seconds of useful work done (excludes setup).
    completion_fraction:
        ``completed_work / total_work``.
    completion_time:
        When the job finished on the timeline clock, or ``None`` if the
        window ended first.
    resumptions:
        Number of idle intervals in which at least one chunk ran.
    setup_overhead:
        Total seconds spent on setup costs.
    idle_time_used_fraction:
        (work + setup) / total idle time — how much of the idle
        capacity the job consumed.
    """

    task: BackgroundTask
    completed_work: float
    completion_fraction: float
    completion_time: Optional[float]
    resumptions: int
    setup_overhead: float
    idle_time_used_fraction: float


def run_in_idle(
    timeline: BusyIdleTimeline,
    task: BackgroundTask,
    budget_seconds: Optional[float] = None,
) -> BackgroundRunReport:
    """Simulate ``task`` running only inside the timeline's idle intervals.

    In each idle interval the task pays ``setup_seconds`` once, then runs
    back-to-back chunks while a whole chunk still fits and work remains.
    Foreground traffic is untouched by construction — work never extends
    past an interval's end.

    ``budget_seconds`` optionally caps the *total* background time (work
    plus setup) the task may consume — the per-drive grant a fleet-level
    allocator hands out (:mod:`repro.fleet.scrub`). ``None`` means
    unbounded and is byte-identical to the historical behavior.
    """
    if budget_seconds is not None and budget_seconds <= 0:
        raise AnalysisError(f"budget_seconds must be > 0, got {budget_seconds!r}")
    remaining = task.total_work
    completed = 0.0
    setup_spent = 0.0
    resumptions = 0
    completion_time: Optional[float] = None

    intervals = _sanitized_idle_intervals(timeline)
    for start, end in intervals:
        if remaining <= 0:
            break
        available = (end - start) - task.setup_seconds
        if available < task.chunk_seconds:
            continue  # interval too short to start even one chunk
        n_fit = int(available // task.chunk_seconds)
        n_needed = int(-(-remaining // task.chunk_seconds))  # ceil
        n_run = min(n_fit, n_needed)
        if budget_seconds is not None:
            budget_left = budget_seconds - completed - setup_spent
            if budget_left < task.setup_seconds + task.chunk_seconds:
                break  # cannot afford even one more chunk anywhere
            n_afford = int((budget_left - task.setup_seconds) // task.chunk_seconds)
            n_run = min(n_run, n_afford)
        if n_run <= 0:
            continue
        resumptions += 1
        setup_spent += task.setup_seconds
        work_here = min(n_run * task.chunk_seconds, remaining)
        completed += work_here
        remaining -= work_here
        if remaining <= 1e-12:
            remaining = 0.0
            completion_time = start + task.setup_seconds + work_here

    total_idle = float(sum(end - start for start, end in intervals))
    completed = min(completed, task.total_work)  # guard float accumulation
    used = completed + setup_spent
    return BackgroundRunReport(
        task=task,
        completed_work=completed,
        completion_fraction=min(1.0, completed / task.total_work),
        completion_time=completion_time,
        resumptions=resumptions,
        setup_overhead=setup_spent,
        idle_time_used_fraction=used / total_idle if total_idle > 0 else float("nan"),
    )


def chunk_size_sweep(
    timeline: BusyIdleTimeline,
    total_work: float,
    chunk_sizes,
    setup_seconds: float = 0.0,
    name: str = "sweep",
) -> dict:
    """Run the same job at several chunk granularities.

    Returns ``{chunk_seconds: BackgroundRunReport}`` — the input for the
    classic throughput-vs-granularity trade-off curve.
    """
    reports = {}
    for chunk in chunk_sizes:
        task = BackgroundTask(
            name=name, total_work=total_work,
            chunk_seconds=float(chunk), setup_seconds=setup_seconds,
        )
        reports[float(chunk)] = run_in_idle(timeline, task)
    return reports


# ----------------------------------------------------------------------
# Media scrub: background repair of latent sector errors
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ScrubPlan:
    """A media-scrub schedule laid into a timeline's idle intervals.

    One scrub pass visits each unrepaired latent region of a
    :class:`~repro.disk.faults.FaultModel` and records *when* each region
    is verified, so the repair times can be fed back into the fault model
    (:meth:`~repro.disk.faults.FaultModel.schedule_repairs`) and a re-run
    of the same workload sees the scrubbed regions as healthy from those
    points on — the scrub-vs-tail-latency trade-off made measurable.

    Attributes
    ----------
    task:
        The equivalent :class:`BackgroundTask` (one chunk per region), or
        ``None`` when there was nothing to scrub.
    repair_times:
        ``{region_index: completion_time_seconds}`` for every region the
        plan reaches within the window.
    regions_total / regions_scrubbed:
        Latent regions outstanding vs. actually reached by the plan.
    scrub_seconds:
        Useful scrub work performed (excludes setup).
    setup_overhead:
        Total seconds spent on per-resumption setup.
    resumptions:
        Idle intervals in which at least one region was scrubbed.
    completion_time:
        Timeline clock at which the last outstanding region was repaired,
        or ``None`` if the window ended with regions still unscrubbed.
    """

    task: Optional[BackgroundTask]
    repair_times: Dict[int, float] = field(default_factory=dict)
    regions_total: int = 0
    regions_scrubbed: int = 0
    scrub_seconds: float = 0.0
    setup_overhead: float = 0.0
    resumptions: int = 0
    completion_time: Optional[float] = None

    @property
    def completion_fraction(self) -> float:
        """Scrubbed fraction of the outstanding regions (1.0 when none
        were outstanding)."""
        if self.regions_total == 0:
            return 1.0
        return self.regions_scrubbed / self.regions_total


def plan_media_scrub(
    timeline: BusyIdleTimeline,
    faults,
    seconds_per_region: float,
    setup_seconds: float = 0.0,
    name: str = "media-scrub",
    obs=None,
) -> ScrubPlan:
    """Lay a scrub of ``faults``' unrepaired latent regions into the
    timeline's idle intervals.

    Uses the same non-clairvoyant policy as :func:`run_in_idle` — pay
    ``setup_seconds`` once per idle interval, then verify whole regions
    back-to-back while the next one still fits — but additionally records
    the completion time of every region, which is what
    :meth:`~repro.disk.faults.FaultModel.schedule_repairs` needs. The
    plan does not mutate ``faults``; see :func:`scrub_latent_regions`
    for the one-call version that does.

    ``obs`` (an :class:`~repro.obs.Observer`, optional) records one
    ``scrub_chunk`` event per verified region at its repair clock, plus
    plan-level counters; the plan itself is unaffected.
    """
    if seconds_per_region <= 0:
        raise AnalysisError(
            f"seconds_per_region must be > 0, got {seconds_per_region!r}"
        )
    if setup_seconds < 0:
        raise AnalysisError(f"setup_seconds must be >= 0, got {setup_seconds!r}")

    pending = sorted(faults.unrepaired_latent_regions())
    if not pending:
        return ScrubPlan(task=None, completion_time=None)

    task = BackgroundTask(
        name=name,
        total_work=len(pending) * seconds_per_region,
        chunk_seconds=seconds_per_region,
        setup_seconds=setup_seconds,
    )

    repair_times: Dict[int, float] = {}
    setup_spent = 0.0
    resumptions = 0
    completion_time: Optional[float] = None
    cursor = 0
    for start, end in _sanitized_idle_intervals(timeline):
        if cursor >= len(pending):
            break
        clock = start + setup_seconds
        if end - clock < seconds_per_region:
            continue  # too short to verify even one region
        resumptions += 1
        setup_spent += setup_seconds
        while cursor < len(pending) and end - clock >= seconds_per_region:
            clock += seconds_per_region
            repair_times[pending[cursor]] = clock
            if obs is not None and obs.tracing:
                obs.emit(
                    "scrub_chunk", clock, "scrub",
                    region=int(pending[cursor]),
                    resumption=resumptions,
                    name=name,
                )
            cursor += 1
        if cursor >= len(pending):
            completion_time = clock

    if obs is not None and obs.enabled:
        obs.metrics.counter("scrub.regions_scrubbed").inc(len(repair_times))
        obs.metrics.counter("scrub.resumptions").inc(resumptions)
        obs.metrics.gauge("scrub.completion_fraction").set(
            len(repair_times) / len(pending)
        )

    return ScrubPlan(
        task=task,
        repair_times=repair_times,
        regions_total=len(pending),
        regions_scrubbed=len(repair_times),
        scrub_seconds=len(repair_times) * seconds_per_region,
        setup_overhead=setup_spent,
        resumptions=resumptions,
        completion_time=completion_time,
    )


def scrub_latent_regions(
    timeline: BusyIdleTimeline,
    faults,
    seconds_per_region: float,
    setup_seconds: float = 0.0,
    name: str = "media-scrub",
    obs=None,
) -> ScrubPlan:
    """Plan a media scrub and feed its repair times into ``faults``.

    After this call a re-run of the same workload against the same fault
    model sees every scrubbed region as healthy from its repair time on;
    only latent errors *hit before* the scrub reached them still fire.
    ``obs`` is forwarded to :func:`plan_media_scrub`.
    """
    plan = plan_media_scrub(
        timeline, faults, seconds_per_region,
        setup_seconds=setup_seconds, name=name, obs=obs,
    )
    if plan.repair_times:
        faults.schedule_repairs(plan.repair_times)
    return plan
