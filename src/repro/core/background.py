"""Background-task execution in idle time.

The payoff of the idleness characterization: scheduling background work
(media scans, scrubbing, rebuilds) into the idle intervals without
touching foreground requests. :func:`run_in_idle` simulates the standard
non-clairvoyant policy — start a fixed-size chunk whenever the drive has
been idle long enough to pay the setup cost, abandon nothing midway
because chunks are sized to fit — and reports progress, overhead and
completion time against a timeline's idle structure.

The chunk granularity is the knob: small chunks harvest short intervals
but pay setup more often; large chunks only fit the long-interval tail —
which is exactly why the *shape* of the idle-time distribution (not just
its total) matters, the point the paper's idleness analysis makes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.disk.timeline import BusyIdleTimeline
from repro.errors import AnalysisError


@dataclass(frozen=True)
class BackgroundTask:
    """A divisible background job.

    Attributes
    ----------
    name:
        Label for reports.
    total_work:
        Disk-seconds of work the whole job needs.
    chunk_seconds:
        Atomic unit of execution; a chunk only starts if it fits in the
        remaining idle interval.
    setup_seconds:
        One-time cost on each *resumption* (first chunk in an interval):
        repositioning, state restore.
    """

    name: str
    total_work: float
    chunk_seconds: float
    setup_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.total_work <= 0:
            raise AnalysisError(f"total_work must be > 0, got {self.total_work!r}")
        if self.chunk_seconds <= 0:
            raise AnalysisError(
                f"chunk_seconds must be > 0, got {self.chunk_seconds!r}"
            )
        if self.setup_seconds < 0:
            raise AnalysisError(
                f"setup_seconds must be >= 0, got {self.setup_seconds!r}"
            )


@dataclass(frozen=True)
class BackgroundRunReport:
    """Outcome of running one task over one timeline's idle intervals.

    Attributes
    ----------
    task:
        The task that ran.
    completed_work:
        Disk-seconds of useful work done (excludes setup).
    completion_fraction:
        ``completed_work / total_work``.
    completion_time:
        When the job finished on the timeline clock, or ``None`` if the
        window ended first.
    resumptions:
        Number of idle intervals in which at least one chunk ran.
    setup_overhead:
        Total seconds spent on setup costs.
    idle_time_used_fraction:
        (work + setup) / total idle time — how much of the idle
        capacity the job consumed.
    """

    task: BackgroundTask
    completed_work: float
    completion_fraction: float
    completion_time: Optional[float]
    resumptions: int
    setup_overhead: float
    idle_time_used_fraction: float


def run_in_idle(timeline: BusyIdleTimeline, task: BackgroundTask) -> BackgroundRunReport:
    """Simulate ``task`` running only inside the timeline's idle intervals.

    In each idle interval the task pays ``setup_seconds`` once, then runs
    back-to-back chunks while a whole chunk still fits and work remains.
    Foreground traffic is untouched by construction — work never extends
    past an interval's end.
    """
    remaining = task.total_work
    completed = 0.0
    setup_spent = 0.0
    resumptions = 0
    completion_time: Optional[float] = None

    for start, end in timeline.idle_intervals():
        if remaining <= 0:
            break
        available = (end - start) - task.setup_seconds
        if available < task.chunk_seconds:
            continue  # interval too short to start even one chunk
        n_fit = int(available // task.chunk_seconds)
        n_needed = int(-(-remaining // task.chunk_seconds))  # ceil
        n_run = min(n_fit, n_needed)
        if n_run <= 0:
            continue
        resumptions += 1
        setup_spent += task.setup_seconds
        work_here = min(n_run * task.chunk_seconds, remaining)
        completed += work_here
        remaining -= work_here
        if remaining <= 1e-12:
            remaining = 0.0
            completion_time = start + task.setup_seconds + work_here

    total_idle = timeline.total_idle
    completed = min(completed, task.total_work)  # guard float accumulation
    used = completed + setup_spent
    return BackgroundRunReport(
        task=task,
        completed_work=completed,
        completion_fraction=min(1.0, completed / task.total_work),
        completion_time=completion_time,
        resumptions=resumptions,
        setup_overhead=setup_spent,
        idle_time_used_fraction=used / total_idle if total_idle > 0 else float("nan"),
    )


def chunk_size_sweep(
    timeline: BusyIdleTimeline,
    total_work: float,
    chunk_sizes,
    setup_seconds: float = 0.0,
    name: str = "sweep",
) -> dict:
    """Run the same job at several chunk granularities.

    Returns ``{chunk_seconds: BackgroundRunReport}`` — the input for the
    classic throughput-vs-granularity trade-off curve.
    """
    reports = {}
    for chunk in chunk_sizes:
        task = BackgroundTask(
            name=name, total_work=total_work,
            chunk_seconds=float(chunk), setup_seconds=setup_seconds,
        )
        reports[float(chunk)] = run_in_idle(timeline, task)
    return reports
