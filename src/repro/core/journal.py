"""Durable checkpoint/resume journal for experiment suites.

A suite of replay jobs at fleet scale runs for hours; losing every
completed job to one crash makes long sweeps infeasible (the restart
cost TraceTracker and the Alibaba-scale analyses both design around).
:class:`SuiteJournal` is the repair: an append-only, fsync'd,
schema-versioned JSONL write-ahead log of completed
:class:`~repro.core.runner.JobResult`\\ s, keyed by a deterministic
**job-spec fingerprint**, that the
:class:`~repro.core.runner.ExperimentRunner` writes as jobs resolve and
reads back to *resume*: journaled jobs are skipped, their recorded
results merged verbatim, and the resumed suite's report is canonically
bit-identical to an uninterrupted run
(:meth:`~repro.core.runner.SuiteReport.canonical_json`).

File layout — one JSON object per line:

* line 1, the **header**: ``{"kind": "header", "schema_version": 1,
  "suite_fingerprint": ..., "n_jobs": N, "fingerprints": [...]}``.
  The suite fingerprint pins the exact ordered job list, so a journal
  can never be resumed against a different suite.
* each subsequent line, a **result record**: ``{"kind": "result",
  "fingerprint": ..., "index": i, "result": {...}}`` — appended and
  fsync'd *after* the job resolves (write-ahead of the report, not of
  the work), so every record describes a fully completed job.

Durability semantics:

* every append is flushed and ``fsync``'d before the runner moves on —
  a ``SIGKILL`` at any instant loses at most the in-flight jobs;
* a torn final line (the crash landed mid-``write``) is detected and
  dropped on load; a malformed line anywhere *before* the end is
  corruption and raises :class:`~repro.errors.JournalError`;
* wrong schema versions and fingerprint mismatches raise
  :class:`~repro.errors.JournalError` with actionable messages instead
  of silently merging the wrong results.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import is_dataclass, fields as dataclass_fields
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, TextIO

import numpy as np

from repro.errors import JournalError

#: Bump on any backwards-incompatible change to the journal layout.
JOURNAL_SCHEMA_VERSION = 1

#: Job fields whose values are volatile across runs and excluded from
#: the fingerprint: a republished shared-memory segment gets a fresh
#: kernel name, but it is the same job.
_VOLATILE_JOB_KEYS = frozenset({"shm_name"})


def _fingerprint_payload(value: Any) -> Any:
    """A JSON-able, deterministic rendering of one job-spec value."""
    if is_dataclass(value) and not isinstance(value, type):
        return {
            "__type__": type(value).__name__,
            **{
                f.name: _fingerprint_payload(getattr(value, f.name))
                for f in dataclass_fields(value)
                if f.name not in _VOLATILE_JOB_KEYS
            },
        }
    if isinstance(value, np.ndarray):
        return {
            "__ndarray__": hashlib.sha256(
                np.ascontiguousarray(value).tobytes()
            ).hexdigest(),
            "dtype": str(value.dtype),
            "shape": list(value.shape),
        }
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, (frozenset, set)):
        return sorted(_fingerprint_payload(v) for v in value)
    if isinstance(value, (list, tuple)):
        return [_fingerprint_payload(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _fingerprint_payload(v) for k, v in sorted(value.items())}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, os.PathLike):
        return {"__path__": os.fspath(value)}
    # Plain spec-like objects (size/mix models, duck-typed trace
    # sources): class name plus attribute dict. The default repr would
    # embed a memory address and break cross-process stability.
    state = getattr(value, "__dict__", None)
    if isinstance(state, dict):
        return {
            "__object__": type(value).__name__,
            **{str(k): _fingerprint_payload(v) for k, v in sorted(state.items())},
        }
    return {"__repr__": repr(value)}


def job_fingerprint(job: Any) -> str:
    """A stable hex fingerprint of one job spec.

    Deterministic across processes, machines and runs (sha256 over the
    canonical JSON of the job's dataclass tree); two jobs share a
    fingerprint iff they would deterministically produce the same
    :class:`~repro.core.runner.JobResult`.
    """
    payload = _fingerprint_payload(job)
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:24]


def suite_fingerprint(fingerprints: Sequence[str]) -> str:
    """Fingerprint of the whole ordered job list."""
    joined = "\n".join(fingerprints)
    return hashlib.sha256(joined.encode("utf-8")).hexdigest()[:24]


class SuiteJournal:
    """The append-only WAL of one suite's completed jobs.

    Build one with :meth:`open` (fresh or resumed) and pass it to
    :meth:`ExperimentRunner.run_suite(..., journal=...)
    <repro.core.runner.ExperimentRunner.run_suite>`; the runner skips
    every job whose fingerprint is already journaled and records each
    newly completed job. Use as a context manager or call :meth:`close`.
    """

    def __init__(
        self,
        path: Path,
        fingerprints: List[str],
        completed: Dict[str, Dict[str, Any]],
        handle: TextIO,
        resumed: bool,
        recovered_torn_line: bool,
    ) -> None:
        self.path = path
        self.fingerprints = fingerprints
        self._completed = completed
        self._handle: Optional[TextIO] = handle
        #: True when this journal was opened with ``resume=True``.
        self.resumed = resumed
        #: True when load dropped a torn (partially written) final line.
        self.recovered_torn_line = recovered_torn_line
        self.n_recorded = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def open(
        cls, path: os.PathLike, jobs: Sequence[Any], resume: bool = False
    ) -> "SuiteJournal":
        """Open the journal at ``path`` for the given ordered job list.

        Fresh mode (``resume=False``) refuses an existing file — resuming
        must be an explicit decision, and overwriting a journal silently
        would destroy exactly the state it exists to protect. Resume mode
        requires the file, validates its header against these jobs, and
        loads every completed record.
        """
        path = Path(path)
        fingerprints = [job_fingerprint(job) for job in jobs]
        suite_fp = suite_fingerprint(fingerprints)
        if not resume:
            if path.exists():
                raise JournalError(
                    f"journal {path} already exists; resume it (--resume) "
                    "or delete the file to start a fresh suite"
                )
            handle = path.open("w", encoding="utf-8")
            header = {
                "kind": "header",
                "schema_version": JOURNAL_SCHEMA_VERSION,
                "suite_fingerprint": suite_fp,
                "n_jobs": len(fingerprints),
                "fingerprints": fingerprints,
            }
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
            return cls(path, fingerprints, {}, handle, False, False)

        if not path.exists():
            raise JournalError(
                f"cannot resume: journal {path} does not exist "
                "(drop --resume to start a fresh suite)"
            )
        completed, torn = cls._load(path, fingerprints, suite_fp)
        handle = path.open("a", encoding="utf-8")
        return cls(path, fingerprints, completed, handle, True, torn)

    @staticmethod
    def _load(
        path: Path, fingerprints: List[str], suite_fp: str
    ):
        raw = path.read_text(encoding="utf-8")
        lines = raw.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        if not lines:
            raise JournalError(f"journal {path} is empty (no header line)")
        torn = False
        records: List[Dict[str, Any]] = []
        for lineno, line in enumerate(lines, start=1):
            try:
                record = json.loads(line)
                if not isinstance(record, dict):
                    raise ValueError("journal lines must be JSON objects")
            except ValueError as exc:
                if lineno == len(lines):
                    # Torn final record: the writer died mid-append. The
                    # preceding records are all fsync'd and complete.
                    torn = True
                    break
                raise JournalError(
                    f"journal {path} is corrupt at line {lineno}: {exc}"
                ) from exc
            records.append(record)
        if not records:
            raise JournalError(
                f"journal {path} has no intact header line"
            )
        header = records[0]
        if header.get("kind") != "header":
            raise JournalError(
                f"journal {path} does not start with a header record "
                f"(got kind={header.get('kind')!r})"
            )
        version = header.get("schema_version")
        if version != JOURNAL_SCHEMA_VERSION:
            raise JournalError(
                f"journal {path} has schema_version {version!r}; this "
                f"library writes and reads version {JOURNAL_SCHEMA_VERSION}. "
                "Re-run the suite without --resume to write a fresh journal."
            )
        if header.get("suite_fingerprint") != suite_fp:
            raise JournalError(
                f"journal {path} belongs to a different suite "
                f"(journal fingerprint {header.get('suite_fingerprint')!r}, "
                f"current job list {suite_fp!r}). The job list — profiles, "
                "drive, schedulers, seeds, spans, fault/tier/obs settings — "
                "must match the original run exactly to resume."
            )
        known = set(fingerprints)
        completed: Dict[str, Dict[str, Any]] = {}
        for record in records[1:]:
            if record.get("kind") != "result":
                raise JournalError(
                    f"journal {path} has an unknown record kind "
                    f"{record.get('kind')!r}"
                )
            fp = record.get("fingerprint")
            if fp not in known:
                raise JournalError(
                    f"journal {path} records a result for fingerprint "
                    f"{fp!r}, which is not in the suite being resumed"
                )
            if "result" not in record:
                raise JournalError(
                    f"journal {path} has a result record without a result "
                    f"payload (fingerprint {fp!r})"
                )
            completed[fp] = record["result"]
        return completed, torn

    # ------------------------------------------------------------------
    # Runner-facing API
    # ------------------------------------------------------------------

    @property
    def n_completed(self) -> int:
        """Completed jobs on disk (from this run and any prior ones)."""
        return len(self._completed)

    def completed_results(self) -> Dict[int, Dict[str, Any]]:
        """``job index -> serialized JobResult`` for journaled jobs.

        Duplicate job specs (identical fingerprints) share the recorded
        result — by construction they would produce it deterministically.
        """
        out: Dict[int, Dict[str, Any]] = {}
        for index, fp in enumerate(self.fingerprints):
            if fp in self._completed:
                out[index] = self._completed[fp]
        return out

    def record(self, index: int, result_payload: Dict[str, Any]) -> None:
        """Durably append one completed job's serialized result.

        Flushed and fsync'd before returning: once :meth:`record`
        returns, the result survives any crash of this process.
        """
        if self._handle is None:
            raise JournalError(f"journal {self.path} is closed")
        if not 0 <= index < len(self.fingerprints):
            raise JournalError(
                f"job index {index} is outside this journal's suite "
                f"(n_jobs={len(self.fingerprints)})"
            )
        fp = self.fingerprints[index]
        record = {
            "kind": "result",
            "fingerprint": fp,
            "index": index,
            "result": result_payload,
        }
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._completed[fp] = result_payload
        self.n_recorded += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SuiteJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._handle is None else "open"
        return (
            f"SuiteJournal({str(self.path)!r}, {state}, "
            f"completed={self.n_completed}/{len(self.fingerprints)})"
        )
