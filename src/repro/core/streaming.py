"""Streaming workload summarization for traces too large to hold.

Production captures run to hundreds of millions of requests. This module
summarizes a request stream in bounded memory: chunks of a trace (or
individual requests) are folded into streaming moments, direction/byte
totals, sequentiality counts, and a base-scale count series, from which
a :class:`~repro.core.summary.WorkloadSummary`-compatible view and a
burstiness estimate are produced at the end.

Memory use is O(span / count_scale) for the count series (a day at a
1-second base scale is 86 400 floats) plus O(1) for everything else.
Chunks are folded with vectorized numpy passes (one ``np.diff``, one
``np.bincount``, and a handful of reductions per chunk), so throughput
is bounded by memory bandwidth rather than the Python interpreter; the
scalar :meth:`StreamingCharacterizer.add_request` path is retained as
the per-request API and as the reference the vectorized path is tested
against.

Streams need not start at clock zero: a capture sliced from the middle
of a longer recording (first arrival at t >> 0) is summarized relative
to its own start, so rates, spans, and the Hurst count series match the
same stream rebased to t = 0. Pass ``start=`` when the observation
window is known to begin before the first arrival (e.g. a capture that
opens with idle time).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.summary import WorkloadSummary
from repro.errors import AnalysisError
from repro.stats.hurst import hurst_aggregate_variance
from repro.stats.moments import StreamingMoments
from repro.traces.millisecond import RequestTrace
from repro.units import KIB


class StreamingCharacterizer:
    """Fold trace chunks into a bounded-memory characterization.

    Chunks must arrive in time order on a shared clock (each chunk's
    times are absolute, as produced by slicing one long capture without
    rebasing, or by a collector's shards read back in order).

    Parameters
    ----------
    label:
        Name carried into the emitted :class:`WorkloadSummary`.
    count_scale:
        Bin width in seconds for the arrival-count series feeding
        :meth:`hurst`.
    start:
        Absolute clock time at which the observation window opens.
        ``None`` (default) infers it from the first arrival seen, which
        is correct for captures that begin with a request; pass it
        explicitly when the window is known to open earlier (e.g. a
        trace whose ``span`` starts at clock 0 but whose first request
        lands later).
    """

    def __init__(
        self,
        label: str = "stream",
        count_scale: float = 1.0,
        start: Optional[float] = None,
    ) -> None:
        if count_scale <= 0:
            raise AnalysisError(f"count_scale must be > 0, got {count_scale!r}")
        self.label = str(label)
        self.count_scale = float(count_scale)
        self._sizes = StreamingMoments()
        self._gaps = StreamingMoments()
        self._counts = np.zeros(0, dtype=np.int64)
        self._n = 0
        self._bytes_total = 0
        self._bytes_written = 0
        self._writes = 0
        self._sequential = 0
        self._start = None if start is None else float(start)
        self._first_time: Optional[float] = None
        self._prev_time: Optional[float] = None
        self._prev_end: Optional[int] = None
        self._span_end = 0.0

    # ------------------------------------------------------------------
    # Folding
    # ------------------------------------------------------------------

    def _resolve_origin(self, first_time: float) -> float:
        """The stream's clock origin, fixed on the first arrival."""
        if self._first_time is None:
            self._first_time = first_time
            if self._start is None:
                self._start = first_time
            elif first_time < self._start:
                raise AnalysisError(
                    f"first arrival at {first_time} precedes the declared "
                    f"stream start {self._start}"
                )
        return self._start  # type: ignore[return-value]

    def add_request(
        self, time: float, lba: int, nsectors: int, is_write: bool
    ) -> None:
        """Fold a single request (the scalar reference path).

        Semantically identical to :meth:`add_chunk` on a one-request
        chunk; kept both as a convenience for event-at-a-time producers
        and as the reference implementation the vectorized path is
        verified against.
        """
        time = float(time)
        if self._prev_time is not None and time < self._prev_time:
            raise AnalysisError(
                f"request at {time} precedes the stream's clock at "
                f"{self._prev_time}"
            )
        origin = self._resolve_origin(time)
        lba = int(lba)
        n = int(nsectors)
        nbytes = n * 512
        self._n += 1
        self._bytes_total += nbytes
        if is_write:
            self._writes += 1
            self._bytes_written += nbytes
        self._sizes.add(nbytes / KIB)
        if self._prev_time is not None:
            self._gaps.add(time - self._prev_time)
        if self._prev_end is not None and lba == self._prev_end:
            self._sequential += 1
        index = int((time - origin) / self.count_scale)
        if index >= self._counts.size:
            grown = np.zeros(index + 1, dtype=np.int64)
            grown[: self._counts.size] = self._counts
            self._counts = grown
        self._counts[index] += 1
        self._prev_time = time
        self._prev_end = lba + n
        self._span_end = max(self._span_end, time)

    def add_chunk(self, chunk: RequestTrace) -> None:
        """Fold one chunk; its times must not precede prior chunks."""
        times = chunk.times
        if times.size == 0:
            self._span_end = max(self._span_end, float(chunk.span))
            return
        if self._prev_time is not None and times[0] < self._prev_time:
            raise AnalysisError(
                f"chunk starts at {times[0]} before the stream's "
                f"clock at {self._prev_time}"
            )
        gaps = np.diff(times)
        if np.any(gaps < 0):
            raise AnalysisError(
                f"chunk {chunk.label!r} times are not monotonically "
                "non-decreasing"
            )
        origin = self._resolve_origin(float(times[0]))
        nbytes = chunk.nsectors * 512
        is_write = chunk.is_write
        self._n += int(times.size)
        self._bytes_total += int(nbytes.sum())
        self._writes += int(is_write.sum())
        self._bytes_written += int(nbytes[is_write].sum())
        self._sizes.add_many(nbytes / KIB)
        if self._prev_time is not None:
            gaps = np.concatenate(([times[0] - self._prev_time], gaps))
        if gaps.size:
            self._gaps.add_many(gaps)
        ends = chunk.lbas + chunk.nsectors
        self._sequential += int(np.count_nonzero(chunk.lbas[1:] == ends[:-1]))
        if self._prev_end is not None and int(chunk.lbas[0]) == self._prev_end:
            self._sequential += 1
        indices = ((times - origin) / self.count_scale).astype(np.int64)
        nbins = max(self._counts.size, int(indices[-1]) + 1)
        binned = np.bincount(indices, minlength=nbins)
        binned[: self._counts.size] += self._counts
        self._counts = binned
        self._prev_time = float(times[-1])
        self._prev_end = int(ends[-1])
        self._span_end = max(self._span_end, float(chunk.span), self._prev_time)

    def observe_span(self, end: float) -> None:
        """Extend the observation window to absolute clock ``end``.

        A stream sliced from a longer run can end with idle time past the
        last arrival; callers that know the true window end (a trace's
        ``span``, or an event stream's ``run_end`` event) declare it here
        so rates are computed over the real window, not just up to the
        last request. Moving the end *backwards* is ignored.
        """
        self._span_end = max(self._span_end, float(end))

    # ------------------------------------------------------------------
    # Accumulated state
    # ------------------------------------------------------------------

    @property
    def n_requests(self) -> int:
        """Requests folded so far."""
        return self._n

    @property
    def first_time(self) -> Optional[float]:
        """Absolute clock time of the first arrival (None before any)."""
        return self._first_time

    @property
    def last_time(self) -> Optional[float]:
        """Absolute clock time of the latest arrival (None before any)."""
        return self._prev_time

    @property
    def span(self) -> float:
        """Observation span in seconds, relative to the stream's start."""
        if self._start is None:
            return 0.0
        return max(self._span_end, self._prev_time or 0.0) - self._start

    def summary(self) -> WorkloadSummary:
        """The accumulated summary (requires at least one request)."""
        if self._n == 0:
            raise AnalysisError("stream is empty; nothing to summarize")
        span = self.span
        cv = self._gaps.cv if self._gaps.n >= 2 else float("nan")
        return WorkloadSummary(
            name=self.label,
            n_requests=self._n,
            span_seconds=span,
            request_rate=self._n / span if span > 0 else 0.0,
            byte_rate=self._bytes_total / span if span > 0 else 0.0,
            write_request_fraction=self._writes / self._n,
            write_byte_fraction=(
                self._bytes_written / self._bytes_total
                if self._bytes_total else float("nan")
            ),
            mean_request_kib=self._sizes.mean,
            median_request_kib=float("nan"),  # medians need the sample
            sequentiality=(
                self._sequential / (self._n - 1) if self._n > 1 else float("nan")
            ),
            interarrival_cv=cv,
        )

    def hurst(self) -> float:
        """Aggregate-variance Hurst estimate of the streamed counts."""
        if self._counts.size < 64:
            raise AnalysisError(
                f"only {self._counts.size} count bins; Hurst needs >= 64"
            )
        return hurst_aggregate_variance(self._counts.astype(np.float64))


def characterize_events(
    events,
    label: str = "events",
    count_scale: float = 1.0,
    start: Optional[float] = 0.0,
) -> StreamingCharacterizer:
    """Fold a dumped event trace into a :class:`StreamingCharacterizer`.

    ``events`` is an iterable of :class:`~repro.obs.TraceEvent` objects
    or their dicts (e.g. straight from
    :func:`repro.obs.load_events_jsonl`). Each ``serve`` event carries
    the request's arrival, LBA, size and direction, so replaying them in
    trace order (by the ``index`` payload — service order can differ
    under seek-aware disciplines) reconstructs exactly the request
    stream the simulator consumed; a ``run_end`` event extends the
    observation window to the run's true span. The result matches the
    batch characterization of the replayed trace (tested to 1e-9),
    closing the loop: a simulated run is itself analyzable at every
    time-scale.

    ``start`` defaults to ``0.0`` — a simulated run's observation window
    opens at clock zero — unlike :class:`StreamingCharacterizer`'s
    default of rebasing to the first arrival; pass ``start=None`` to get
    that rebasing behaviour for sliced captures.
    """
    from repro.obs.events import TraceEvent, serve_events

    materialized = [
        e if isinstance(e, TraceEvent) else TraceEvent.from_dict(e)
        for e in events
    ]
    served = serve_events(materialized)
    if not served:
        raise AnalysisError("event stream holds no 'serve' events")
    characterizer = StreamingCharacterizer(
        label=label, count_scale=count_scale, start=start
    )
    for event in served:
        data = event.data
        characterizer.add_request(
            data["arrival"], data["lba"], data["nsectors"], data["write"]
        )
    for event in materialized:
        if event.kind == "run_end":
            characterizer.observe_span(event.time)
    return characterizer
