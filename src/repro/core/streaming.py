"""Streaming workload summarization for traces too large to hold.

Production captures run to hundreds of millions of requests. This module
summarizes a request stream in bounded memory: chunks of a trace (or
individual requests) are folded into streaming moments, direction/byte
totals, sequentiality counts, and a base-scale count series, from which
a :class:`~repro.core.summary.WorkloadSummary`-compatible view and a
burstiness estimate are produced at the end.

Memory use is O(span / count_scale) for the count series (a day at a
1-second base scale is 86 400 floats) plus O(1) for everything else.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.summary import WorkloadSummary
from repro.errors import AnalysisError
from repro.stats.hurst import hurst_aggregate_variance
from repro.stats.moments import StreamingMoments
from repro.traces.millisecond import RequestTrace
from repro.units import KIB


class StreamingCharacterizer:
    """Fold trace chunks into a bounded-memory characterization.

    Chunks must arrive in time order on a shared clock (each chunk's
    times are absolute, as produced by slicing one long capture without
    rebasing, or by a collector's shards read back in order).
    """

    def __init__(self, label: str = "stream", count_scale: float = 1.0) -> None:
        if count_scale <= 0:
            raise AnalysisError(f"count_scale must be > 0, got {count_scale!r}")
        self.label = str(label)
        self.count_scale = float(count_scale)
        self._sizes = StreamingMoments()
        self._gaps = StreamingMoments()
        self._counts: List[int] = []
        self._n = 0
        self._bytes_total = 0
        self._bytes_written = 0
        self._writes = 0
        self._sequential = 0
        self._prev_time: Optional[float] = None
        self._prev_end: Optional[int] = None
        self._span = 0.0

    def add_chunk(self, chunk: RequestTrace) -> None:
        """Fold one chunk; its times must not precede prior chunks."""
        if len(chunk) and self._prev_time is not None:
            if chunk.times[0] < self._prev_time:
                raise AnalysisError(
                    f"chunk starts at {chunk.times[0]} before the stream's "
                    f"clock at {self._prev_time}"
                )
        for i in range(len(chunk)):
            time = float(chunk.times[i])
            lba = int(chunk.lbas[i])
            n = int(chunk.nsectors[i])
            nbytes = n * 512
            self._n += 1
            self._bytes_total += nbytes
            if chunk.is_write[i]:
                self._writes += 1
                self._bytes_written += nbytes
            self._sizes.add(nbytes / KIB)
            if self._prev_time is not None:
                self._gaps.add(time - self._prev_time)
            if self._prev_end is not None and lba == self._prev_end:
                self._sequential += 1
            index = int(time / self.count_scale)
            while len(self._counts) <= index:
                self._counts.append(0)
            self._counts[index] += 1
            self._prev_time = time
            self._prev_end = lba + n
        self._span = max(self._span, float(chunk.span))

    @property
    def n_requests(self) -> int:
        """Requests folded so far."""
        return self._n

    def summary(self) -> WorkloadSummary:
        """The accumulated summary (requires at least one request)."""
        if self._n == 0:
            raise AnalysisError("stream is empty; nothing to summarize")
        span = max(self._span, self._prev_time or 0.0)
        cv = self._gaps.cv if self._gaps.n >= 2 else float("nan")
        return WorkloadSummary(
            name=self.label,
            n_requests=self._n,
            span_seconds=span,
            request_rate=self._n / span if span > 0 else 0.0,
            byte_rate=self._bytes_total / span if span > 0 else 0.0,
            write_request_fraction=self._writes / self._n,
            write_byte_fraction=(
                self._bytes_written / self._bytes_total
                if self._bytes_total else float("nan")
            ),
            mean_request_kib=self._sizes.mean,
            median_request_kib=float("nan"),  # medians need the sample
            sequentiality=(
                self._sequential / (self._n - 1) if self._n > 1 else float("nan")
            ),
            interarrival_cv=cv,
        )

    def hurst(self) -> float:
        """Aggregate-variance Hurst estimate of the streamed counts."""
        if len(self._counts) < 64:
            raise AnalysisError(
                f"only {len(self._counts)} count bins; Hurst needs >= 64"
            )
        return hurst_aggregate_variance(np.asarray(self._counts, dtype=float))
