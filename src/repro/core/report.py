"""Report rendering: tables and text figures.

The benchmark harness reproduces the paper's tables and figures as
*series of numbers*; this module renders them legibly in a terminal —
aligned tables via :class:`Table`, (x, y) series via
:func:`render_series`, and a quick-look ASCII plot via
:func:`ascii_plot` for eyeballing shapes without a plotting stack.
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np

from repro.errors import AnalysisError

Cell = Union[str, float, int]


def _format_cell(value: Cell, precision: int) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, (int, np.integer)):
        return str(int(value))
    if isinstance(value, (float, np.floating)):
        v = float(value)
        if v != v:
            return "nan"
        if v == 0:
            return "0"
        if abs(v) >= 10 ** (precision + 2) or abs(v) < 10 ** (-precision):
            return f"{v:.{precision}g}"
        return f"{v:.{precision}f}".rstrip("0").rstrip(".")
    return str(value)


class Table:
    """A simple aligned text table.

    >>> t = Table(["workload", "util"])
    >>> t.add_row(["web", 0.104])
    >>> print(t.render())          # doctest: +SKIP
    """

    def __init__(self, headers: Sequence[str], title: str = "", precision: int = 4) -> None:
        if not headers:
            raise AnalysisError("a table needs at least one column")
        self.headers = [str(h) for h in headers]
        self.title = title
        self.precision = int(precision)
        self._rows: List[List[str]] = []

    def add_row(self, cells: Sequence[Cell]) -> None:
        """Append one row; must match the header width."""
        if len(cells) != len(self.headers):
            raise AnalysisError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self._rows.append([_format_cell(c, self.precision) for c in cells])

    @property
    def n_rows(self) -> int:
        """Number of data rows added so far."""
        return len(self._rows)

    def render(self) -> str:
        """The table as aligned text, first column left-, rest right-aligned."""
        widths = [len(h) for h in self.headers]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt(cells: Sequence[str]) -> str:
            parts = [cells[0].ljust(widths[0])]
            parts += [c.rjust(w) for c, w in zip(cells[1:], widths[1:])]
            return "  ".join(parts)

        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(fmt(self.headers))
        lines.append("  ".join("-" * w for w in widths))
        lines.extend(fmt(row) for row in self._rows)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def render_series(
    xs: Sequence[float],
    ys: Sequence[float],
    x_name: str = "x",
    y_name: str = "y",
    title: str = "",
    precision: int = 4,
) -> str:
    """Render an (x, y) series — one figure curve — as a two-column table."""
    xs = list(xs)
    ys = list(ys)
    if len(xs) != len(ys):
        raise AnalysisError(f"series lengths differ: {len(xs)} vs {len(ys)}")
    table = Table([x_name, y_name], title=title, precision=precision)
    for x, y in zip(xs, ys):
        table.add_row([float(x), float(y)])
    return table.render()


def ascii_plot(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 60,
    height: int = 15,
    log_x: bool = False,
    title: str = "",
) -> str:
    """A quick-look scatter of a series in ASCII.

    Each point becomes a ``*`` on a ``width x height`` canvas with the
    y-range annotated; enough to eyeball whether a CDF bends where it
    should without leaving the terminal.
    """
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    if xs.size != ys.size:
        raise AnalysisError(f"series lengths differ: {xs.size} vs {ys.size}")
    finite = np.isfinite(xs) & np.isfinite(ys)
    if log_x:
        finite &= xs > 0
    xs, ys = xs[finite], ys[finite]
    if xs.size == 0:
        raise AnalysisError("nothing to plot: no finite points")
    if width < 2 or height < 2:
        raise AnalysisError("canvas must be at least 2x2")

    px = np.log10(xs) if log_x else xs
    x_lo, x_hi = float(px.min()), float(px.max())
    y_lo, y_hi = float(ys.min()), float(ys.max())
    x_span = x_hi - x_lo or 1.0
    y_span = y_hi - y_lo or 1.0

    canvas = [[" "] * width for _ in range(height)]
    for x, y in zip(px, ys):
        col = min(width - 1, int((x - x_lo) / x_span * (width - 1)))
        row = min(height - 1, int((y - y_lo) / y_span * (height - 1)))
        canvas[height - 1 - row][col] = "*"

    lines = []
    if title:
        lines.append(title)
    lines.append(f"y: [{y_lo:.4g}, {y_hi:.4g}]")
    lines.extend("|" + "".join(row) for row in canvas)
    lines.append("+" + "-" * width)
    x_label = "log10(x)" if log_x else "x"
    lines.append(f"{x_label}: [{x_lo:.4g}, {x_hi:.4g}]")
    return "\n".join(lines)


def format_percent(fraction: float, precision: int = 1) -> str:
    """Render a fraction as a percentage string (NaN-safe)."""
    if fraction != fraction:
        return "nan"
    return f"{100.0 * fraction:.{precision}f}%"


def section(title: str, body: str) -> str:
    """A titled report section with an underline."""
    return f"{title}\n{'=' * len(title)}\n{body}\n"
