"""Lifetime/family analysis: variability across an entire drive family.

The Lifetime traces reduce each drive to cumulative counters, so the
analysis is purely distributional: how is lifetime-average load spread
across the family, how concentrated is the family's traffic on its
busiest members, and how large is the heavily-utilized sub-population?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import AnalysisError
from repro.stats.ecdf import Ecdf
from repro.stats.inequality import gini_coefficient, lorenz_curve, top_share
from repro.traces.lifetime import DriveFamilyDataset


@dataclass(frozen=True)
class FamilyAnalysis:
    """Distributional characterization of a drive family.

    Attributes
    ----------
    n_drives:
        Family size.
    throughput_ecdf:
        ECDF of per-drive lifetime-average throughput (bytes/s).
    utilization_ecdf:
        ECDF of per-drive lifetime-average bandwidth utilization.
    write_fraction_ecdf:
        ECDF of per-drive lifetime write byte share.
    median_utilization, p95_utilization:
        Utilization quantiles across drives.
    heavy_fraction:
        Share of drives above the heavy-utilization threshold.
    heavy_threshold:
        That threshold (default 0.5 = half the bandwidth, lifetime
        average — an extremely busy drive).
    gini:
        Gini coefficient of lifetime traffic across the family.
    top_decile_share:
        Share of family traffic moved by the busiest 10 % of drives.
    age_load_correlation:
        Pearson correlation between power-on hours and lifetime-average
        throughput (near 0: load is role-driven, not age-driven).
    bandwidth:
        The bandwidth used for utilization, bytes/second.
    """

    n_drives: int
    throughput_ecdf: Ecdf
    utilization_ecdf: Ecdf
    write_fraction_ecdf: Ecdf
    median_utilization: float
    p95_utilization: float
    heavy_fraction: float
    heavy_threshold: float
    gini: float
    top_decile_share: float
    age_load_correlation: float
    bandwidth: float


def analyze_family(
    dataset: DriveFamilyDataset,
    bandwidth: float,
    heavy_threshold: float = 0.5,
) -> FamilyAnalysis:
    """Characterize a drive family against a sustained ``bandwidth``."""
    if len(dataset) == 0:
        raise AnalysisError(f"family {dataset.family!r} is empty")
    if bandwidth <= 0:
        raise AnalysisError(f"bandwidth must be > 0, got {bandwidth!r}")
    if not 0.0 < heavy_threshold <= 1.0:
        raise AnalysisError(
            f"heavy_threshold must be in (0, 1], got {heavy_threshold!r}"
        )
    utilizations = dataset.mean_utilizations(bandwidth)
    util_ecdf = Ecdf(utilizations)
    totals = dataset.total_bytes()
    ages = dataset.power_on_hours()
    throughputs = dataset.mean_throughputs()
    if len(dataset) > 2 and ages.std() > 0 and throughputs.std() > 0:
        age_corr = float(np.corrcoef(ages, throughputs)[0, 1])
    else:
        age_corr = float("nan")
    return FamilyAnalysis(
        n_drives=len(dataset),
        throughput_ecdf=Ecdf(throughputs),
        utilization_ecdf=util_ecdf,
        write_fraction_ecdf=Ecdf(dataset.write_byte_fractions()),
        median_utilization=util_ecdf.median,
        p95_utilization=util_ecdf.quantile(0.95),
        heavy_fraction=float(np.mean(utilizations >= heavy_threshold)),
        heavy_threshold=float(heavy_threshold),
        gini=gini_coefficient(totals),
        top_decile_share=top_share(totals, 0.1),
        age_load_correlation=age_corr,
        bandwidth=float(bandwidth),
    )


def family_lorenz(dataset: DriveFamilyDataset) -> Tuple[np.ndarray, np.ndarray]:
    """Lorenz curve of lifetime traffic across the family — the paper's
    concentration figure: x = share of drives (ascending load),
    y = share of total family traffic."""
    if len(dataset) == 0:
        raise AnalysisError(f"family {dataset.family!r} is empty")
    return lorenz_curve(dataset.total_bytes())
