"""Forecasting hourly traffic: the capacity-planning use of Hour traces.

The practical consumer of hour-granularity data is provisioning: how
much traffic will this drive see tomorrow? Two simple, strong baselines
are provided — the seasonal-naive forecast (this hour last period) and
a per-phase EWMA that tracks slow drift — plus the evaluation loop that
scores them, so a user can tell whether the hourly series is predictable
beyond its cycle (it largely is; the bursty residual is not).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError


def seasonal_naive_forecast(history: np.ndarray, horizon: int, period: int) -> np.ndarray:
    """Forecast ``horizon`` steps by repeating the last observed period."""
    history = np.asarray(history, dtype=np.float64)
    if period < 1:
        raise AnalysisError(f"period must be >= 1, got {period!r}")
    if history.size < period:
        raise AnalysisError(
            f"need at least one full period ({period}), got {history.size}"
        )
    if horizon < 1:
        raise AnalysisError(f"horizon must be >= 1, got {horizon!r}")
    last_cycle = history[-period:]
    repeats = int(np.ceil(horizon / period))
    return np.tile(last_cycle, repeats)[:horizon]


def seasonal_ewma_forecast(
    history: np.ndarray, horizon: int, period: int, alpha: float = 0.3
) -> np.ndarray:
    """Forecast by an exponentially weighted mean *per phase of the cycle*.

    Each hour-of-period keeps its own EWMA over past cycles, so the
    forecast adapts to drift while preserving the diurnal shape.
    """
    history = np.asarray(history, dtype=np.float64)
    if not 0.0 < alpha <= 1.0:
        raise AnalysisError(f"alpha must be in (0, 1], got {alpha!r}")
    if period < 1:
        raise AnalysisError(f"period must be >= 1, got {period!r}")
    if history.size < period:
        raise AnalysisError(
            f"need at least one full period ({period}), got {history.size}"
        )
    if horizon < 1:
        raise AnalysisError(f"horizon must be >= 1, got {horizon!r}")
    phase_level = np.full(period, np.nan)
    for i, value in enumerate(history):
        phase = i % period
        if np.isnan(phase_level[phase]):
            phase_level[phase] = value
        else:
            phase_level[phase] = alpha * value + (1.0 - alpha) * phase_level[phase]
    start_phase = history.size % period
    phases = (start_phase + np.arange(horizon)) % period
    return phase_level[phases]


def flat_mean_forecast(history: np.ndarray, horizon: int) -> np.ndarray:
    """The no-structure baseline: forecast the historical mean."""
    history = np.asarray(history, dtype=np.float64)
    if history.size == 0:
        raise AnalysisError("history is empty")
    if horizon < 1:
        raise AnalysisError(f"horizon must be >= 1, got {horizon!r}")
    return np.full(horizon, float(history.mean()))


@dataclass(frozen=True)
class ForecastScore:
    """Accuracy of one forecast against the realized values.

    Attributes
    ----------
    mape:
        Mean absolute percentage error over hours with nonzero truth.
    rmse:
        Root mean squared error (same units as the series).
    bias:
        Mean signed error (forecast - truth).
    """

    mape: float
    rmse: float
    bias: float


def score_forecast(forecast: np.ndarray, truth: np.ndarray) -> ForecastScore:
    """Score a forecast against the realized series."""
    forecast = np.asarray(forecast, dtype=np.float64)
    truth = np.asarray(truth, dtype=np.float64)
    if forecast.shape != truth.shape or forecast.ndim != 1 or forecast.size == 0:
        raise AnalysisError(
            f"forecast {forecast.shape} and truth {truth.shape} must be "
            "equal-length non-empty 1-D arrays"
        )
    errors = forecast - truth
    nonzero = truth != 0
    mape = (
        float(np.mean(np.abs(errors[nonzero]) / np.abs(truth[nonzero])))
        if nonzero.any() else float("nan")
    )
    return ForecastScore(
        mape=mape,
        rmse=float(np.sqrt(np.mean(errors ** 2))),
        bias=float(errors.mean()),
    )
