"""Cross-workload comparison: feature vectors and similarity.

Once several workloads have been characterized, the natural question is
which of them behave alike — whether two traced servers can share one
provisioning model, or which synthetic profile is closest to a newly
traced machine. This module turns a :class:`MillisecondStudy` into a
fixed feature vector and compares studies by z-scored Euclidean
distance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.timescales import MillisecondStudy
from repro.errors import AnalysisError

#: Feature order used by :func:`feature_vector`.
FEATURE_NAMES: Tuple[str, ...] = (
    "log10_request_rate",
    "utilization",
    "write_byte_fraction",
    "sequentiality",
    "log10_interarrival_cv",
    "hurst",
    "idle_top_decile_share",
)


def feature_vector(study: MillisecondStudy) -> np.ndarray:
    """The comparison features of one study, in :data:`FEATURE_NAMES`
    order. Undefined entries (saturated drive has no idleness, sparse
    trace no burstiness) become NaN and are ignored pairwise."""
    summary = study.summary
    hurst = study.burstiness.hurst_variance if study.burstiness else float("nan")
    idle_share = (
        study.idleness.top_decile_time_share if study.idleness else float("nan")
    )
    cv = summary.interarrival_cv
    return np.array(
        [
            np.log10(max(summary.request_rate, 1e-9)),
            study.utilization.overall,
            summary.write_byte_fraction,
            summary.sequentiality if summary.sequentiality == summary.sequentiality else np.nan,
            np.log10(cv) if cv and cv > 0 else np.nan,
            hurst,
            idle_share,
        ]
    )


@dataclass(frozen=True)
class ComparisonResult:
    """Pairwise similarity structure over a set of studies.

    Attributes
    ----------
    names:
        Workload names, defining row/column order.
    features:
        ``(n, k)`` matrix of raw feature values (NaN where undefined).
    distances:
        ``(n, n)`` symmetric z-scored Euclidean distance matrix
        (0 diagonal); distances use only features defined for *both*
        workloads.
    """

    names: List[str]
    features: np.ndarray
    distances: np.ndarray

    def most_similar_pair(self) -> Tuple[str, str, float]:
        """The closest distinct pair, as ``(name_a, name_b, distance)``."""
        n = len(self.names)
        best = (0, 1, float("inf"))
        for i in range(n):
            for j in range(i + 1, n):
                if self.distances[i, j] < best[2]:
                    best = (i, j, float(self.distances[i, j]))
        return self.names[best[0]], self.names[best[1]], best[2]

    def least_similar_pair(self) -> Tuple[str, str, float]:
        """The farthest pair, as ``(name_a, name_b, distance)``."""
        n = len(self.names)
        worst = (0, 1, -1.0)
        for i in range(n):
            for j in range(i + 1, n):
                if self.distances[i, j] > worst[2]:
                    worst = (i, j, float(self.distances[i, j]))
        return self.names[worst[0]], self.names[worst[1]], worst[2]

    def nearest_to(self, name: str) -> Tuple[str, float]:
        """The workload closest to ``name`` and its distance."""
        if name not in self.names:
            raise AnalysisError(f"unknown workload {name!r}")
        i = self.names.index(name)
        order = np.argsort(self.distances[i])
        for j in order:
            if j != i:
                return self.names[int(j)], float(self.distances[i, int(j)])
        raise AnalysisError("comparison needs at least two workloads")


def compare_studies(studies: Dict[str, MillisecondStudy]) -> ComparisonResult:
    """Build the pairwise comparison over named studies.

    Features are z-scored across the population (NaN-aware) so no single
    dimension dominates; each pairwise distance is the RMS over the
    features defined for both members.
    """
    if len(studies) < 2:
        raise AnalysisError("comparison needs at least two studies")
    names = list(studies)
    raw = np.stack([feature_vector(studies[name]) for name in names])

    means = np.nanmean(raw, axis=0)
    stds = np.nanstd(raw, axis=0)
    stds[stds == 0] = 1.0
    z = (raw - means) / stds

    n = len(names)
    distances = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            both = ~np.isnan(z[i]) & ~np.isnan(z[j])
            if not both.any():
                d = float("inf")
            else:
                diff = z[i, both] - z[j, both]
                d = float(np.sqrt(np.mean(diff ** 2)))
            distances[i, j] = distances[j, i] = d
    return ComparisonResult(names=names, features=raw, distances=distances)
