"""Per-trace workload summaries: the rows of the paper's overview tables.

:func:`summarize_trace` distills a millisecond trace into the headline
numbers the evaluation tables report per workload: rate, transfer volume,
read/write mix, request sizes, sequentiality, and interarrival
variability.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

from repro.errors import AnalysisError
from repro.traces.millisecond import RequestTrace
from repro.units import KIB


@dataclass(frozen=True)
class WorkloadSummary:
    """Headline statistics of one millisecond trace."""

    name: str
    n_requests: int
    span_seconds: float
    request_rate: float
    byte_rate: float
    write_request_fraction: float
    write_byte_fraction: float
    mean_request_kib: float
    median_request_kib: float
    sequentiality: float
    interarrival_cv: float

    def as_row(self) -> list:
        """The summary as a flat row (field order), for table building."""
        return [getattr(self, f.name) for f in fields(self)]

    @staticmethod
    def headers() -> list:
        """Column names matching :meth:`as_row`."""
        return [f.name for f in fields(WorkloadSummary)]


def summarize_trace(trace: RequestTrace) -> WorkloadSummary:
    """Summarize a non-empty millisecond trace."""
    if not len(trace):
        raise AnalysisError(f"trace {trace.label!r} is empty; nothing to summarize")
    sizes_kib = trace.nbytes / KIB
    gaps = trace.interarrival_times()
    if gaps.size >= 2 and gaps.mean() > 0:
        cv = float(gaps.std(ddof=1) / gaps.mean())
    else:
        cv = float("nan")
    return WorkloadSummary(
        name=trace.label,
        n_requests=len(trace),
        span_seconds=trace.span,
        request_rate=trace.request_rate,
        byte_rate=trace.byte_rate,
        write_request_fraction=trace.write_fraction,
        write_byte_fraction=trace.write_byte_fraction,
        mean_request_kib=float(sizes_kib.mean()),
        median_request_kib=float(np.median(sizes_kib)),
        sequentiality=trace.sequentiality(),
        interarrival_cv=cv,
    )
