"""Read/write traffic dynamics over time.

The paper analyzes "the dynamics of the read and write traffic": not the
average mix but how it moves. This module produces windowed read and
write byte-rate series, the write-fraction series, write-burst episodes,
and the read/write cross-correlation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import AnalysisError
from repro.traces.millisecond import RequestTrace


@dataclass(frozen=True)
class TrafficDynamics:
    """Windowed read/write traffic of one trace at one scale.

    Attributes
    ----------
    scale:
        Window length in seconds.
    read_rate, write_rate:
        Bytes/second per window.
    write_fraction:
        Write share of bytes per window (NaN in empty windows).
    mean_write_fraction:
        Overall write byte share.
    write_fraction_std:
        Standard deviation of the windowed write fraction — the paper's
        "dynamics": 0 means a frozen mix, large values mean the mix
        swings over time.
    rw_correlation:
        Pearson correlation of the read and write rate series (NaN when
        either is constant).
    """

    scale: float
    read_rate: np.ndarray
    write_rate: np.ndarray
    write_fraction: np.ndarray
    mean_write_fraction: float
    write_fraction_std: float
    rw_correlation: float


def analyze_traffic(trace: RequestTrace, scale: float = 1.0) -> TrafficDynamics:
    """Windowed read/write dynamics of a non-empty trace."""
    if not len(trace):
        raise AnalysisError(f"trace {trace.label!r} is empty; nothing to analyze")
    if scale <= 0:
        raise AnalysisError(f"scale must be > 0, got {scale!r}")
    read_bytes = trace.reads().byte_series(scale)
    write_bytes = trace.writes().byte_series(scale)
    total = read_bytes + write_bytes
    with np.errstate(invalid="ignore", divide="ignore"):
        wf = np.where(total > 0, write_bytes / np.maximum(total, 1e-300), np.nan)
    active = wf[~np.isnan(wf)]
    if read_bytes.std() > 0 and write_bytes.std() > 0:
        corr = float(np.corrcoef(read_bytes, write_bytes)[0, 1])
    else:
        corr = float("nan")
    return TrafficDynamics(
        scale=float(scale),
        read_rate=read_bytes / scale,
        write_rate=write_bytes / scale,
        write_fraction=wf,
        mean_write_fraction=trace.write_byte_fraction,
        write_fraction_std=float(active.std(ddof=1)) if active.size > 1 else float("nan"),
        rw_correlation=corr,
    )


def write_bursts(
    trace: RequestTrace, scale: float = 1.0, threshold: float = 0.9
) -> List[Tuple[float, float]]:
    """Maximal episodes where the windowed write byte share stays at or
    above ``threshold``.

    Returns ``(start_seconds, length_seconds)`` pairs. Empty windows end
    an episode (no traffic is not a write burst).
    """
    if not 0.0 < threshold <= 1.0:
        raise AnalysisError(f"threshold must be in (0, 1], got {threshold!r}")
    dynamics = analyze_traffic(trace, scale)
    flags = np.nan_to_num(dynamics.write_fraction, nan=-1.0) >= threshold
    episodes: List[Tuple[float, float]] = []
    start = None
    for i, flag in enumerate(flags):
        if flag and start is None:
            start = i
        elif not flag and start is not None:
            episodes.append((start * scale, (i - start) * scale))
            start = None
    if start is not None:
        episodes.append((start * scale, (flags.size - start) * scale))
    return episodes


def rw_ratio_series(trace: RequestTrace, scale: float = 1.0) -> np.ndarray:
    """Read:write byte ratio per window (NaN where nothing was written or
    the window is empty) — the series the paper's R:W dynamics figure
    plots."""
    if scale <= 0:
        raise AnalysisError(f"scale must be > 0, got {scale!r}")
    read_bytes = trace.reads().byte_series(scale)
    write_bytes = trace.writes().byte_series(scale)
    with np.errstate(invalid="ignore", divide="ignore"):
        ratio = read_bytes / write_bytes
    ratio[~np.isfinite(ratio)] = np.nan
    return ratio
