"""Hour-scale analysis: drive populations over days and weeks.

The Hour traces show each drive's traffic with per-hour resolution over
weeks. The interesting structure lives at two levels:

* **within a drive** — diurnal/weekly cycles and hour-scale burstiness
  (peak-to-mean ratios far above 1);
* **across drives** — order-of-magnitude spread in mean load and a
  sub-population spending many *consecutive* hours at full bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.errors import AnalysisError
from repro.stats.ecdf import Ecdf
from repro.traces.hourly import HourlyDataset
from repro.units import HOURS_PER_WEEK


@dataclass(frozen=True)
class HourScaleAnalysis:
    """Population-level characterization of an hourly dataset.

    Attributes
    ----------
    n_drives, hours:
        Dataset shape (hours = common observed length).
    mean_throughput_ecdf, peak_throughput_ecdf:
        Cross-drive ECDFs of mean and peak-hour throughput (bytes/s).
    peak_to_mean_ecdf:
        Cross-drive ECDF of each drive's peak-to-mean ratio.
    write_fraction_ecdf:
        Cross-drive ECDF of write byte share.
    saturated_hour_fraction:
        Share of all drive-hours at/above the saturation threshold.
    saturated_drive_fraction:
        Share of drives with at least one saturated hour.
    multi_hour_saturated_fraction:
        Share of drives with a saturated stretch of >= 3 consecutive
        hours — the paper's "for hours at a time" population.
    longest_stretches:
        Per-drive longest consecutive saturated-hour run.
    threshold, bandwidth:
        Parameters the saturation statistics used.
    """

    n_drives: int
    hours: int
    mean_throughput_ecdf: Ecdf
    peak_throughput_ecdf: Ecdf
    peak_to_mean_ecdf: Ecdf
    write_fraction_ecdf: Ecdf
    saturated_hour_fraction: float
    saturated_drive_fraction: float
    multi_hour_saturated_fraction: float
    longest_stretches: Dict[str, int]
    threshold: float
    bandwidth: float


def analyze_hour_scale(
    dataset: HourlyDataset,
    bandwidth: float,
    threshold: float = 0.9,
    multi_hour: int = 3,
) -> HourScaleAnalysis:
    """Characterize an hourly dataset against a drive ``bandwidth``
    (bytes/second)."""
    if len(dataset) == 0:
        raise AnalysisError("hourly dataset is empty")
    if bandwidth <= 0:
        raise AnalysisError(f"bandwidth must be > 0, got {bandwidth!r}")
    if multi_hour < 1:
        raise AnalysisError(f"multi_hour must be >= 1, got {multi_hour!r}")
    stretches = dataset.longest_saturated_stretches(bandwidth, threshold)
    values = np.array(list(stretches.values()))
    return HourScaleAnalysis(
        n_drives=len(dataset),
        hours=dataset.hours,
        mean_throughput_ecdf=Ecdf(dataset.mean_throughputs()),
        peak_throughput_ecdf=Ecdf(dataset.peak_throughputs()),
        peak_to_mean_ecdf=Ecdf([t.peak_to_mean for t in dataset]),
        write_fraction_ecdf=Ecdf([t.write_byte_fraction for t in dataset]),
        saturated_hour_fraction=dataset.saturated_hour_fraction(bandwidth, threshold),
        saturated_drive_fraction=float(np.mean(values >= 1)),
        multi_hour_saturated_fraction=float(np.mean(values >= multi_hour)),
        longest_stretches=stretches,
        threshold=float(threshold),
        bandwidth=float(bandwidth),
    )


def population_weekly_curve(dataset: HourlyDataset) -> np.ndarray:
    """Mean traffic per hour-of-week averaged over all drives (length
    168, NaN where never observed) — the paper's diurnal-pattern figure."""
    if len(dataset) == 0:
        raise AnalysisError("hourly dataset is empty")
    curves = np.stack([t.fold_weekly() for t in dataset])
    with np.errstate(invalid="ignore"):
        return np.nanmean(curves, axis=0)


def diurnal_peak_ratio(dataset: HourlyDataset) -> float:
    """Busiest to quietest hour-of-week ratio of the population curve —
    one number summarizing how strong the weekly cycle is."""
    curve = population_weekly_curve(dataset)
    finite = curve[np.isfinite(curve)]
    if finite.size < HOURS_PER_WEEK // 2 or finite.min() <= 0:
        return float("nan")
    return float(finite.max() / finite.min())
