"""Full text dossiers: render complete analyses for humans.

The CLI and notebooks want the same thing: every number an analysis
produced, arranged readably. These renderers take the analysis objects
and return plain text (built on :mod:`repro.core.report`); the CLI is a
thin wrapper around them.
"""

from __future__ import annotations

from repro.core.hour_analysis import HourScaleAnalysis
from repro.core.lifetime_analysis import FamilyAnalysis
from repro.core.report import Table, format_percent, section
from repro.core.timescales import MillisecondStudy
from repro.units import format_bytes, format_duration


def render_study_report(study: MillisecondStudy, drive_name: str = "") -> str:
    """The complete millisecond-study dossier: workload overview,
    utilization, idleness, burstiness and read/write dynamics."""
    parts = []
    s = study.summary
    overview = Table(["metric", "value"])
    overview.add_row(["workload", s.name])
    if drive_name:
        overview.add_row(["drive", drive_name])
    overview.add_row(["requests", s.n_requests])
    overview.add_row(["span", format_duration(s.span_seconds)])
    overview.add_row(["request rate (req/s)", s.request_rate])
    overview.add_row(["byte rate", format_bytes(s.byte_rate) + "/s"])
    overview.add_row(["write fraction (requests)", format_percent(s.write_request_fraction)])
    overview.add_row(["write fraction (bytes)", format_percent(s.write_byte_fraction)])
    overview.add_row(["sequentiality", format_percent(s.sequentiality)])
    overview.add_row(["interarrival CV", s.interarrival_cv])
    parts.append(section("Workload", overview.render()))

    u = study.utilization
    util = Table(["scale_s", "mean_util", "p95_util", "max_util"])
    for scale in sorted(u.per_scale):
        d = u.per_scale[scale]
        util.add_row([scale, d.mean, d.p95, d.maximum])
    body = (
        f"overall utilization: {format_percent(u.overall)}\n"
        f"windows >= {u.high_load_threshold:.0%} busy: "
        f"{format_percent(u.high_load_fraction)}\n" + util.render()
    )
    parts.append(section("Utilization", body))

    if study.idleness is not None:
        i = study.idleness
        idle = Table(["metric", "value"])
        idle.add_row(["idle fraction", format_percent(i.idle_fraction)])
        idle.add_row(["idle intervals", i.n_intervals])
        idle.add_row(["mean interval", format_duration(i.mean_interval)])
        idle.add_row(["median interval", format_duration(i.median_interval)])
        idle.add_row(["p99 interval", format_duration(i.p99_interval)])
        idle.add_row(["idle time in longest 10% of intervals", format_percent(i.top_decile_time_share)])
        idle.add_row(["best-fit family", i.best_fit_family])
        parts.append(section("Idleness", idle.render()))

    if study.busyness is not None:
        b = study.busyness
        busy = Table(["metric", "value"])
        busy.add_row(["busy periods", b.n_periods])
        busy.add_row(["periods per hour", b.periods_per_hour])
        busy.add_row(["median period", format_duration(b.median_period)])
        busy.add_row(["p99 period", format_duration(b.p99_period)])
        busy.add_row(["longest period", format_duration(b.longest_period)])
        parts.append(section("Busy periods", busy.render()))

    if study.burstiness is not None:
        b = study.burstiness
        burst = Table(["scale_s", "IDC"])
        for scale, idc in zip(b.scales, b.idc):
            burst.add_row([scale, idc])
        body = (
            f"Hurst (aggregate variance): {b.hurst_variance:.3f}\n"
            f"Hurst (R/S): {b.hurst_rs:.3f}\n"
            f"interarrival CV: {b.interarrival_cv:.3f}\n"
            f"bursty across scales: {b.is_bursty_across_scales}\n" + burst.render()
        )
        parts.append(section("Burstiness", body))

    t = study.traffic
    parts.append(
        section(
            "Read/write dynamics",
            f"mean write byte share: {format_percent(t.mean_write_fraction)}\n"
            f"windowed write-share std: {t.write_fraction_std:.3f}\n"
            f"read/write rate correlation: {t.rw_correlation:.3f}",
        )
    )
    return "\n".join(parts)


def render_hour_report(analysis: HourScaleAnalysis, diurnal_ratio: float = float("nan")) -> str:
    """The hour-scale population dossier."""
    table = Table(["metric", "value"])
    table.add_row(["drives", analysis.n_drives])
    table.add_row(["hours", analysis.hours])
    table.add_row(["median mean throughput", format_bytes(analysis.mean_throughput_ecdf.median) + "/s"])
    table.add_row(["median peak throughput", format_bytes(analysis.peak_throughput_ecdf.median) + "/s"])
    table.add_row(["median peak-to-mean", analysis.peak_to_mean_ecdf.median])
    table.add_row(["drive-hours saturated", format_percent(analysis.saturated_hour_fraction)])
    table.add_row(["drives ever saturated", format_percent(analysis.saturated_drive_fraction)])
    table.add_row(["drives saturated >= 3h straight", format_percent(analysis.multi_hour_saturated_fraction)])
    table.add_row(["diurnal peak ratio", diurnal_ratio])
    return section("Hour-scale analysis", table.render())


def render_family_report(analysis: FamilyAnalysis, family: str = "family") -> str:
    """The lifetime/family dossier."""
    table = Table(["metric", "value"])
    table.add_row(["drives", analysis.n_drives])
    table.add_row(["median lifetime utilization", format_percent(analysis.median_utilization)])
    table.add_row(["p95 lifetime utilization", format_percent(analysis.p95_utilization)])
    table.add_row([
        f"drives above {analysis.heavy_threshold:.0%} utilization",
        format_percent(analysis.heavy_fraction),
    ])
    table.add_row(["Gini of lifetime traffic", analysis.gini])
    table.add_row(["traffic moved by busiest 10%", format_percent(analysis.top_decile_share)])
    table.add_row(["median write byte share", format_percent(analysis.write_fraction_ecdf.median)])
    return section(f"Family analysis: {family}", table.render())
