"""One exponential-backoff-with-jitter helper for every retry path.

Before this module existed the repo had two hand-rolled backoff ladders:
the drive-level retry ladder in :mod:`repro.disk.faults` (service-time
*costs* per recovery attempt) and the suite runner's retry loop in
:mod:`repro.core.runner` (wall-clock *delays* between attempts). Both
now share :func:`backoff_delays` for the deterministic schedule and
:class:`BackoffPolicy` for the seeded-jitter form, so the two ladders
cannot drift apart again.

The schedule is computed by repeated multiplication (``base``,
``base*factor``, ``(base*factor)*factor``, ...) rather than
``base * factor**i`` — bit-identical to the historical loop in
:mod:`repro.disk.faults`, whose outputs are pinned by tests and golden
files.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import SimulationError


def backoff_delays(
    base: float,
    factor: float,
    attempts: int,
    max_delay: Optional[float] = None,
) -> List[float]:
    """The deterministic exponential ladder: attempt ``i`` (1-based)
    costs ``base`` grown by ``factor`` ``i - 1`` times.

    ``max_delay`` caps every rung. Raises
    :class:`~repro.errors.SimulationError` on unusable parameters
    (negative base, factor below 1, negative attempt count).
    """
    if base < 0:
        raise SimulationError(f"backoff base must be >= 0, got {base!r}")
    if factor < 1.0:
        raise SimulationError(f"backoff factor must be >= 1, got {factor!r}")
    if attempts < 0:
        raise SimulationError(f"backoff attempts must be >= 0, got {attempts!r}")
    if max_delay is not None and max_delay < 0:
        raise SimulationError(f"max_delay must be >= 0, got {max_delay!r}")
    delays: List[float] = []
    delay = base
    for _ in range(attempts):
        rung = delay if max_delay is None else min(delay, max_delay)
        delays.append(rung)
        delay *= factor
    return delays


@dataclass(frozen=True)
class BackoffPolicy:
    """A seeded exponential-backoff-with-jitter schedule.

    :meth:`delay` is stateless and deterministic: the jitter draw for a
    given ``(seed, key, attempt)`` triple is always the same, so a retry
    schedule is reproducible across processes and resumed runs while
    still decorrelating concurrent retriers (give each a distinct
    ``key``, e.g. the job index).

    Attributes
    ----------
    base:
        Delay of the first retry, seconds.
    factor:
        Multiplier applied per subsequent attempt (>= 1).
    jitter:
        Relative jitter amplitude in ``[0, 1]``: the deterministic rung
        is scaled by a draw from ``[1 - jitter, 1 + jitter]``.
    max_delay:
        Cap applied to the un-jittered rung (``None`` = uncapped).
    seed:
        Root entropy for the jitter stream.
    """

    base: float = 0.05
    factor: float = 2.0
    jitter: float = 0.25
    max_delay: Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        # Reuse the ladder validation for base/factor/max_delay.
        backoff_delays(self.base, self.factor, 0, self.max_delay)
        if not 0.0 <= self.jitter <= 1.0:
            raise SimulationError(
                f"jitter must be in [0, 1], got {self.jitter!r}"
            )

    def delay(self, attempt: int, key: int = 0) -> float:
        """Seconds to wait before retry ``attempt`` (1-based) of ``key``."""
        if attempt < 1:
            raise SimulationError(f"attempt must be >= 1, got {attempt!r}")
        rung = self.base * self.factor ** (attempt - 1)
        if self.max_delay is not None:
            rung = min(rung, self.max_delay)
        if self.jitter == 0.0 or rung == 0.0:
            return rung
        rng = np.random.default_rng(
            [self.seed & 0xFFFFFFFF, int(key) & 0xFFFFFFFF, attempt]
        )
        return rung * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))
