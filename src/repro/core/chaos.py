"""Deterministic chaos injection for the suite runner.

A :class:`ChaosPolicy` is a *seeded recipe* of worker-level faults — the
failures a fleet actually sees (preempted workers, OOM kills, scheduler
stalls, exhausted ``/dev/shm``) — that the
:class:`~repro.core.runner.ExperimentRunner` injects into its own worker
pool while a suite runs. The point is not to make suites fail: it is to
*prove they don't*. Property tests and the CI chaos-smoke job run real
suites under sustained chaos and assert the merged
:class:`~repro.core.runner.SuiteReport` is identical (canonically, see
:meth:`~repro.core.runner.SuiteReport.canonical_json`) to an
uninterrupted clean run — retries, worker respawns and the durable
journal doing the repair work.

Every decision is drawn from ``default_rng([seed, job_index, attempt,
salt])``, so a policy is a pure function of ``(seed, job, attempt)``:
the same suite under the same policy injects the same kills, stalls,
delays and attach failures no matter how many workers run it or how the
previous faults landed.

Four fault legs:

* **kill** — SIGKILL the worker mid-job (parent-side). The runner
  detects the crash, respawns the worker and resubmits the job; kills
  injected by the policy do not consume the job's retry budget (they are
  the runner's own doing), but are capped at
  :attr:`ChaosPolicy.max_faults_per_job` so a pathological policy
  cannot loop forever.
* **stall** — SIGSTOP the worker, SIGCONT it ``stall_seconds`` later
  (parent-side). The per-job timeout clock is credited for the stall so
  a stalled-but-healthy job is not misclassified as hung.
* **delay** — the worker sleeps before starting the job (worker-side).
* **shm attach failure** — the worker's next shared-memory trace attach
  raises (worker-side, via
  :func:`repro.traces.shared.inject_attach_failures`); the in-worker
  retry ladder must absorb it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.errors import ChaosError

#: Salts for the per-leg decision streams (stable across releases; the
#: chaos schedule is part of a run's reproducibility surface).
_KILL_SALT = 0x6B696C6C
_STALL_SALT = 0x7374616C
_DELAY_SALT = 0x64656C61
_SHM_SALT = 0x73686D66


@dataclass(frozen=True)
class ChaosPlan:
    """The injections one ``(job, attempt)`` submission will suffer.

    Parent-side legs (``kill_after``, ``stall_after``) are seconds after
    submission, ``None`` when the leg did not fire; worker-side legs
    travel to the worker inside the job message. Frozen and picklable.
    """

    kill_after: Optional[float] = None
    stall_after: Optional[float] = None
    stall_seconds: float = 0.0
    delay: float = 0.0
    shm_failures: int = 0

    @property
    def any(self) -> bool:
        return (
            self.kill_after is not None
            or self.stall_after is not None
            or self.delay > 0.0
            or self.shm_failures > 0
        )


@dataclass(frozen=True)
class ChaosPolicy:
    """A seeded, validated recipe of injected worker faults.

    Probabilities are per job submission (so a resubmitted job faces
    fresh, independent draws); durations are seconds.
    """

    name: str = "custom"
    seed: int = 0
    kill_prob: float = 0.0
    kill_delay: float = 0.05
    stall_prob: float = 0.0
    stall_seconds: float = 0.2
    delay_prob: float = 0.0
    delay_seconds: float = 0.05
    shm_fail_prob: float = 0.0
    #: Free (budget-exempt) injected faults per job before further
    #: crashes start consuming the normal retry budget.
    max_faults_per_job: int = 16

    def __post_init__(self) -> None:
        for field_name in ("kill_prob", "stall_prob", "delay_prob", "shm_fail_prob"):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ChaosError(
                    f"{field_name} must be in [0, 1], got {value!r}"
                )
        for field_name in ("kill_delay", "stall_seconds", "delay_seconds"):
            value = getattr(self, field_name)
            if value < 0.0:
                raise ChaosError(f"{field_name} must be >= 0, got {value!r}")
        if self.max_faults_per_job < 1:
            raise ChaosError(
                f"max_faults_per_job must be >= 1, got "
                f"{self.max_faults_per_job!r}"
            )

    @property
    def active(self) -> bool:
        """True when at least one fault leg can fire."""
        return any(
            p > 0.0
            for p in (
                self.kill_prob, self.stall_prob,
                self.delay_prob, self.shm_fail_prob,
            )
        )

    def _draw(self, index: int, attempt: int, salt: int) -> float:
        rng = np.random.default_rng(
            [self.seed & 0xFFFFFFFF, int(index), int(attempt), salt]
        )
        return float(rng.random())

    def plan(self, index: int, attempt: int) -> ChaosPlan:
        """The deterministic injection plan for submission ``attempt``
        (1-based) of job ``index``."""
        kill_after = (
            self.kill_delay
            if self.kill_prob > 0.0
            and self._draw(index, attempt, _KILL_SALT) < self.kill_prob
            else None
        )
        stall_after = (
            0.0
            if self.stall_prob > 0.0
            and self._draw(index, attempt, _STALL_SALT) < self.stall_prob
            else None
        )
        delay = (
            self.delay_seconds
            if self.delay_prob > 0.0
            and self._draw(index, attempt, _DELAY_SALT) < self.delay_prob
            else 0.0
        )
        shm_failures = (
            1
            if self.shm_fail_prob > 0.0
            and self._draw(index, attempt, _SHM_SALT) < self.shm_fail_prob
            else 0
        )
        return ChaosPlan(
            kill_after=kill_after,
            stall_after=stall_after,
            stall_seconds=self.stall_seconds if stall_after is not None else 0.0,
            delay=delay,
            shm_failures=shm_failures,
        )


def _preset(name: str, **kwargs) -> ChaosPolicy:
    return ChaosPolicy(name=name, **kwargs)


_PRESETS: Dict[str, ChaosPolicy] = {
    "light": _preset(
        "light",
        kill_prob=0.10, stall_prob=0.10, stall_seconds=0.1,
        delay_prob=0.25, delay_seconds=0.02, shm_fail_prob=0.05,
    ),
    "moderate": _preset(
        "moderate",
        kill_prob=0.25, stall_prob=0.20, stall_seconds=0.15,
        delay_prob=0.40, delay_seconds=0.05, shm_fail_prob=0.15,
    ),
    "heavy": _preset(
        "heavy",
        kill_prob=0.45, kill_delay=0.02, stall_prob=0.30, stall_seconds=0.2,
        delay_prob=0.60, delay_seconds=0.08, shm_fail_prob=0.30,
    ),
}


def available_chaos_policies() -> Dict[str, ChaosPolicy]:
    """Name -> preset policy, mirroring the fault-profile registry."""
    return dict(_PRESETS)


def get_chaos_policy(name: str, seed: int = 0) -> ChaosPolicy:
    """A preset :class:`ChaosPolicy` reseeded with ``seed``."""
    try:
        preset = _PRESETS[name]
    except KeyError:
        raise ChaosError(
            f"unknown chaos policy {name!r}; available: {sorted(_PRESETS)}"
        ) from None
    return ChaosPolicy(
        **{**preset.__dict__, "seed": int(seed)}
    )
