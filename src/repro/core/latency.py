"""Response-time characterization of a simulation run.

Utilization and idleness describe the drive; latency describes what the
host feels. This module characterizes the response-time distribution of
a :class:`~repro.disk.SimulationResult` overall and per request class
(reads vs. writes — very different under a write-back cache), and
reconstructs the queue-depth process from arrival/finish times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.disk.simulator import SimulationResult
from repro.errors import AnalysisError
from repro.stats.ecdf import Ecdf
from repro.stats.moments import SampleDescription, describe


@dataclass(frozen=True)
class LatencyAnalysis:
    """Latency characterization of one simulation run.

    Attributes
    ----------
    response:
        Response-time (arrival to completion) description, seconds.
    wait:
        Queueing-delay description.
    service:
        Service-time description.
    read_response, write_response:
        Per-class response descriptions (``None`` when a class is empty).
    mean_queue_depth, max_queue_depth:
        Time-averaged and peak number of requests in the system.
    """

    response: SampleDescription
    wait: SampleDescription
    service: SampleDescription
    read_response: Optional[SampleDescription]
    write_response: Optional[SampleDescription]
    mean_queue_depth: float
    max_queue_depth: int


def queue_depth_series(result: SimulationResult, scale: float) -> np.ndarray:
    """Mean number of requests in the system per ``scale``-second window.

    Reconstructed from arrival and finish times: the system size N(t)
    rises at each arrival and falls at each completion; per-window means
    come from integrating N(t) exactly between window edges.
    """
    if scale <= 0:
        raise AnalysisError(f"scale must be > 0, got {scale!r}")
    trace = result.trace
    if not len(trace):
        return np.zeros(0)
    span = result.timeline.span
    # Event-sorted +1/-1 steps.
    events = np.concatenate([trace.times, result.finish_times])
    deltas = np.concatenate([np.ones(len(trace)), -np.ones(len(trace))])
    order = np.argsort(events, kind="stable")
    events, deltas = events[order], deltas[order]
    # Integral of N(t) at each event boundary.
    depth = np.cumsum(deltas)
    # N(t) between events[i] and events[i+1] equals depth[i].
    nbins = int(np.ceil(span / scale))
    edges = np.minimum(np.arange(nbins + 1) * scale, span)
    # Cumulative integral of N at arbitrary t.
    seg_starts = events
    seg_depths = depth
    cum = np.concatenate(
        [[0.0], np.cumsum(seg_depths[:-1] * np.diff(seg_starts))]
    )

    def integral(t: np.ndarray) -> np.ndarray:
        idx = np.searchsorted(seg_starts, t, side="right") - 1
        out = np.zeros_like(t)
        inside = idx >= 0
        clipped = np.clip(idx, 0, seg_starts.size - 1)
        out[inside] = cum[clipped[inside]] + seg_depths[clipped[inside]] * (
            t[inside] - seg_starts[clipped[inside]]
        )
        return out

    areas = np.diff(integral(edges))
    widths = np.diff(edges)
    with np.errstate(invalid="ignore", divide="ignore"):
        series = np.where(widths > 0, areas / widths, 0.0)
    return np.maximum(series, 0.0)


def analyze_latency(result: SimulationResult) -> LatencyAnalysis:
    """Characterize the latency of a non-empty simulation run."""
    trace = result.trace
    if not len(trace):
        raise AnalysisError("simulation served no requests; nothing to analyze")
    reads = ~trace.is_write
    writes = trace.is_write
    read_desc = describe(result.response_times[reads]) if reads.any() else None
    write_desc = describe(result.response_times[writes]) if writes.any() else None

    # Time-averaged system size via Little's law: L = lambda * W.
    span = result.timeline.span
    mean_depth = (
        float(result.response_times.sum()) / span if span > 0 else float("nan")
    )
    # Peak depth from the event walk.
    events = np.concatenate([trace.times, result.finish_times])
    deltas = np.concatenate([np.ones(len(trace)), -np.ones(len(trace))])
    order = np.argsort(events, kind="stable")
    peak = int(np.cumsum(deltas[order]).max())

    return LatencyAnalysis(
        response=describe(result.response_times),
        wait=describe(result.wait_times),
        service=describe(result.service_times),
        read_response=read_desc,
        write_response=write_desc,
        mean_queue_depth=mean_depth,
        max_queue_depth=peak,
    )


def response_ecdf(result: SimulationResult) -> Ecdf:
    """ECDF of response times — the latency CDF figure."""
    if not len(result.trace):
        raise AnalysisError("simulation served no requests; nothing to analyze")
    return Ecdf(result.response_times)


# ----------------------------------------------------------------------
# Degraded-mode tails (fault injection)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DegradedTailAnalysis:
    """Tail-latency characterization of a (possibly fault-injected) run.

    Fault injection moves the *tail*, not the mean: a handful of
    retry ladders and reassignment seeks inflate P99/P999 while the bulk
    of the distribution barely shifts. This analysis reports exactly the
    quantities that comparison needs, alongside the fault counters that
    explain them.

    Attributes
    ----------
    n_requests / n_faulted / n_failed / completed_requests:
        Request accounting; ``completed_requests + n_failed`` always
        equals ``n_requests``.
    fault_penalty_seconds:
        Total extra service seconds the fault machinery added.
    mean_response / p99_response / p999_response / max_response:
        Response-time statistics, seconds.
    """

    n_requests: int
    n_faulted: int
    n_failed: int
    completed_requests: int
    fault_penalty_seconds: float
    mean_response: float
    p99_response: float
    p999_response: float
    max_response: float


def _tail_stats(responses: np.ndarray) -> tuple:
    """(mean, p99, p999, max) of a response sample; all-NaN when empty."""
    if responses.size == 0:
        nan = float("nan")
        return nan, nan, nan, nan
    ordered = np.sort(responses)
    p99, p999 = np.quantile(ordered, [0.99, 0.999])
    return float(ordered.mean()), float(p99), float(p999), float(ordered[-1])


def analyze_degraded_tail(result: SimulationResult) -> DegradedTailAnalysis:
    """Characterize the response-time tail of a run, healthy or degraded.

    Works on any :class:`SimulationResult` — on a healthy run the fault
    counters are simply zero, which makes the healthy-vs-degraded
    comparison symmetric. A zero-request run yields a well-defined empty
    analysis (all counters zero, all response statistics NaN) rather
    than raising, so sweep code can analyze every cell uniformly.
    """
    mean, p99, p999, peak = _tail_stats(result.response_times)
    return DegradedTailAnalysis(
        n_requests=len(result.trace),
        n_faulted=result.n_faulted,
        n_failed=result.n_failed,
        completed_requests=result.completed_requests,
        fault_penalty_seconds=result.fault_penalty_seconds,
        mean_response=mean,
        p99_response=p99,
        p999_response=p999,
        max_response=peak,
    )


def tail_inflation(
    healthy: DegradedTailAnalysis, degraded: DegradedTailAnalysis
) -> dict:
    """Multiplicative tail inflation of a degraded run over its healthy
    baseline: ``{metric: degraded/healthy}`` for mean, P99, P999 and max.

    A ratio of 1.0 means the fault profile left that statistic alone;
    latent-error retry ladders typically show up as P999 ratios far above
    the mean ratio. Degenerate inputs get a sentinel instead of a
    misleading number or a ``ZeroDivisionError``: both sides zero means
    nothing changed (1.0); a zero, negative or non-finite baseline — or
    a non-finite numerator, e.g. the NaN statistics of an empty analysis
    — yields NaN.
    """
    def ratio(d: float, h: float) -> float:
        if not (np.isfinite(d) and np.isfinite(h)):
            return float("nan")
        if d == 0.0 and h == 0.0:
            return 1.0
        if h <= 0.0:
            return float("nan")
        return d / h

    return {
        "mean": ratio(degraded.mean_response, healthy.mean_response),
        "p99": ratio(degraded.p99_response, healthy.p99_response),
        "p999": ratio(degraded.p999_response, healthy.p999_response),
        "max": ratio(degraded.max_response, healthy.max_response),
    }


# ----------------------------------------------------------------------
# Tier-split tails (SSD cache tier)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TierTailAnalysis:
    """Hit/miss-split tail characterization of a tiered run.

    A cache tier does to latency what fault injection does, in reverse:
    it deflates the *bulk* (hits complete at flash speed) while the
    misses keep — and under write-back eviction destages, inflate — the
    mechanical tail. This reuses the degraded-tail machinery on the two
    request subsets, and ``miss_inflation`` is
    :func:`tail_inflation` of the miss subset over the hit subset: how
    many times worse a tier miss is than a hit at each statistic.

    Attributes
    ----------
    n_requests / n_hits / n_misses:
        Request accounting (``n_hits + n_misses == n_requests``).
    hit_rate:
        ``n_hits / n_requests`` (NaN on an empty run).
    hit / miss:
        :class:`DegradedTailAnalysis` of each subset; an empty subset
        carries NaN statistics.
    miss_inflation:
        ``{mean, p99, p999, max}`` ratios of miss over hit tails.
    """

    n_requests: int
    n_hits: int
    n_misses: int
    hit_rate: float
    hit: DegradedTailAnalysis
    miss: DegradedTailAnalysis
    miss_inflation: dict


def _subset_tail(result: SimulationResult, mask: np.ndarray) -> DegradedTailAnalysis:
    """Degraded-tail statistics of one request subset of a run."""
    indices = set(np.flatnonzero(mask).tolist())
    subset_events = [e for e in result.fault_events if e.index in indices]
    n_failed = int(result.failed[mask].sum())
    mean, p99, p999, peak = _tail_stats(result.response_times[mask])
    return DegradedTailAnalysis(
        n_requests=int(mask.sum()),
        n_faulted=len({e.index for e in subset_events}),
        n_failed=n_failed,
        completed_requests=int(mask.sum()) - n_failed,
        fault_penalty_seconds=float(sum(e.penalty for e in subset_events)),
        mean_response=mean,
        p99_response=p99,
        p999_response=p999,
        max_response=peak,
    )


def analyze_tier_tail(result: SimulationResult) -> TierTailAnalysis:
    """Split a tiered run's response tail into flash hits and HDD misses.

    Requires a run produced with a tier attached (``result.tier_hits``
    is set); raises :class:`AnalysisError` otherwise. Zero-request runs
    and all-hit/all-miss runs are well-defined: the empty subset carries
    NaN statistics and the inflation ratios degrade to NaN through
    :func:`tail_inflation`'s guards.
    """
    if result.tier_hits is None:
        raise AnalysisError(
            "result has no tier hit log; run the simulator with a TierConfig"
        )
    hits = result.tier_hits
    n = len(result.trace)
    hit_analysis = _subset_tail(result, hits)
    miss_analysis = _subset_tail(result, ~hits)
    return TierTailAnalysis(
        n_requests=n,
        n_hits=int(hits.sum()),
        n_misses=n - int(hits.sum()),
        hit_rate=float(hits.sum()) / n if n else float("nan"),
        hit=hit_analysis,
        miss=miss_analysis,
        miss_inflation=tail_inflation(hit_analysis, miss_analysis),
    )
