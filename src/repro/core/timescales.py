"""Cross-time-scale orchestration.

Two orchestrators tie the layers together:

* :class:`MillisecondStudy` / :func:`run_millisecond_study` — the full
  millisecond-scale pipeline for one workload: synthesize (or accept) a
  trace, replay it through the disk model, and run every ms-scale
  analysis. This is the one-call entry point the examples and benchmarks
  use.
* :class:`CrossScaleStudy` — the consistency experiment (table T4): the
  same drive population summarized at the hour and lifetime scales, plus
  a millisecond trace matched to a representative drive-hour, must agree
  on mean throughput and read/write mix. Lifetime counters are *derived*
  from the hourly counters by summation, mirroring how a drive's
  cumulative counters really are the sum of its hours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.burstiness import BurstinessAnalysis, analyze_burstiness
from repro.core.busyness import BusynessAnalysis, analyze_busyness
from repro.core.idleness import IdlenessAnalysis, analyze_idleness
from repro.core.summary import WorkloadSummary, summarize_trace
from repro.core.traffic import TrafficDynamics, analyze_traffic
from repro.core.utilization import UtilizationAnalysis, analyze_utilization
from repro.disk.drive import DriveSpec
from repro.disk.simulator import DiskSimulator, SimulationResult
from repro.errors import AnalysisError
from repro.synth.hourly import HourlyWorkloadModel
from repro.synth.workload import WorkloadProfile
from repro.traces.hourly import HourlyDataset
from repro.traces.lifetime import DriveFamilyDataset, LifetimeRecord
from repro.traces.millisecond import RequestTrace
from repro.units import SECONDS_PER_HOUR


@dataclass(frozen=True)
class MillisecondStudy:
    """Every millisecond-scale analysis of one trace on one drive."""

    trace: RequestTrace
    simulation: SimulationResult
    summary: WorkloadSummary
    utilization: UtilizationAnalysis
    idleness: Optional[IdlenessAnalysis]
    busyness: Optional[BusynessAnalysis]
    burstiness: Optional[BurstinessAnalysis]
    traffic: TrafficDynamics


def run_millisecond_study(
    trace_or_profile,
    drive: DriveSpec,
    span: float = 600.0,
    seed: int = 0,
    scheduler: str = "fcfs",
    utilization_scales: Sequence[float] = (1.0, 10.0, 60.0),
    burstiness_base_scale: float = 0.01,
    faults=None,
    tier=None,
    obs=None,
) -> MillisecondStudy:
    """Run the full millisecond-scale pipeline.

    ``trace_or_profile`` is either a ready :class:`RequestTrace` (replayed
    as-is; ``span``/``seed`` ignored) or a :class:`WorkloadProfile`
    (synthesized against the drive first). Analyses that are undefined
    for the particular timeline (no idle on a saturated drive, too few
    requests for burstiness) come back as ``None`` rather than failing
    the whole study.

    ``faults`` (a :class:`~repro.disk.faults.FaultProfile` or prepared
    :class:`~repro.disk.faults.FaultModel`, ``None`` = healthy) runs the
    replay in degraded mode; the fault record is available on
    ``study.simulation``.

    ``tier`` (a :class:`~repro.tier.TierConfig`, ``None`` = bare drive)
    replays through an SSD cache tier; the hit log and tier accounting
    are available on ``study.simulation``.

    ``obs`` (an :class:`~repro.obs.Observer`, ``None`` = unobserved) is
    forwarded to the :class:`DiskSimulator`; results are bit-identical
    either way.
    """
    if isinstance(trace_or_profile, WorkloadProfile):
        trace = trace_or_profile.synthesize(
            span=span, capacity_sectors=drive.capacity_sectors, seed=seed
        )
    elif isinstance(trace_or_profile, RequestTrace):
        trace = trace_or_profile
    else:
        raise AnalysisError(
            "expected a RequestTrace or WorkloadProfile, got "
            f"{type(trace_or_profile).__name__}"
        )
    result = DiskSimulator(
        drive, scheduler=scheduler, seed=seed, faults=faults, tier=tier, obs=obs
    ).run(trace)
    timeline = result.timeline

    def _try(fn, *args, **kwargs):
        try:
            return fn(*args, **kwargs)
        except AnalysisError:
            return None

    return MillisecondStudy(
        trace=trace,
        simulation=result,
        summary=summarize_trace(trace),
        utilization=analyze_utilization(timeline, scales=utilization_scales),
        idleness=_try(analyze_idleness, timeline),
        busyness=_try(analyze_busyness, timeline),
        burstiness=_try(analyze_burstiness, trace, base_scale=burstiness_base_scale),
        traffic=analyze_traffic(trace, scale=1.0),
    )


def lifetime_from_hourly(
    dataset: HourlyDataset, family: str = "derived"
) -> DriveFamilyDataset:
    """Collapse hourly counters into lifetime records by summation —
    exactly the relationship between the paper's Hour and Lifetime data."""
    if len(dataset) == 0:
        raise AnalysisError("hourly dataset is empty")
    records = []
    for trace in dataset:
        if trace.hours == 0:
            continue
        records.append(
            LifetimeRecord(
                drive_id=trace.drive_id,
                power_on_hours=float(trace.hours),
                bytes_read=float(trace.read_bytes.sum()),
                bytes_written=float(trace.write_bytes.sum()),
                model=family,
            )
        )
    if not records:
        raise AnalysisError("no drive in the dataset has observed hours")
    return DriveFamilyDataset(records, family=family)


@dataclass(frozen=True)
class ScaleRow:
    """One time scale's view of the same traffic."""

    scale: str
    throughput: float
    write_byte_fraction: float


class CrossScaleStudy:
    """The cross-scale consistency experiment.

    Built from one hourly dataset: the lifetime view is derived by
    summation, and a millisecond trace is synthesized whose byte rate
    targets a chosen drive's mean hourly throughput. :meth:`rows` then
    reports (throughput, write share) per scale and
    :meth:`max_relative_error` quantifies their agreement.
    """

    def __init__(
        self,
        hourly: HourlyDataset,
        family: DriveFamilyDataset,
        ms_trace: RequestTrace,
        reference_drive: str,
    ) -> None:
        self.hourly = hourly
        self.family = family
        self.ms_trace = ms_trace
        self.reference_drive = reference_drive

    @classmethod
    def build(
        cls,
        profile: WorkloadProfile,
        drive: DriveSpec,
        hourly_model: Optional[HourlyWorkloadModel] = None,
        n_drives: int = 50,
        weeks: int = 2,
        ms_span: float = 600.0,
        seed: int = 0,
    ) -> "CrossScaleStudy":
        """Generate the three linked views.

        The reference drive is the population's median-load drive; the
        millisecond profile's rate and mix are retargeted to reproduce
        that drive's mean hourly byte rate and write share.
        """
        model = hourly_model or HourlyWorkloadModel(bandwidth=drive.sustained_bandwidth)
        hourly = model.generate(n_drives=n_drives, weeks=weeks, seed=seed)
        family = lifetime_from_hourly(hourly, family=drive.name)

        throughputs = hourly.mean_throughputs()
        median_index = int(np.argsort(throughputs)[len(throughputs) // 2])
        reference = hourly[median_index]
        target_byte_rate = reference.mean_throughput
        target_write_share = reference.write_byte_fraction

        mean_request_bytes = float(
            np.mean(profile.sizes.generate(np.random.default_rng(seed), 4096))
        ) * 512.0
        rate = max(target_byte_rate / mean_request_bytes, 1e-3)
        from dataclasses import replace
        from repro.synth.mix import BernoulliMix

        matched = replace(
            profile,
            rate=rate,
            mix=BernoulliMix(float(np.clip(target_write_share, 0.0, 1.0))),
        )
        ms_trace = matched.synthesize(
            span=ms_span, capacity_sectors=drive.capacity_sectors, seed=seed
        )
        return cls(hourly, family, ms_trace, reference.drive_id)

    def rows(self) -> List[ScaleRow]:
        """The per-scale (throughput, write share) comparison rows."""
        reference = self.hourly.by_id(self.reference_drive)
        lifetime = self.family.by_id(self.reference_drive)
        return [
            ScaleRow("millisecond", self.ms_trace.byte_rate, self.ms_trace.write_byte_fraction),
            ScaleRow("hour", reference.mean_throughput, reference.write_byte_fraction),
            ScaleRow(
                "lifetime",
                lifetime.total_bytes / (lifetime.power_on_hours * SECONDS_PER_HOUR),
                lifetime.write_byte_fraction,
            ),
        ]

    def max_relative_error(self) -> float:
        """Largest relative disagreement in throughput between any scale
        and the hour-scale reference (the construction target)."""
        rows = self.rows()
        reference = rows[1].throughput
        if reference <= 0:
            return float("nan")
        return max(abs(r.throughput - reference) / reference for r in rows)
