"""Spatial (LBA) characterization: where on the drive the traffic lands.

The companion of the temporal analyses: how concentrated the accesses
are over the address space, how far the head must travel between
consecutive requests, and how long sequential runs last. These shape
positioning costs (and therefore utilization) as strongly as arrival
timing does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AnalysisError
from repro.stats.ecdf import Ecdf
from repro.stats.inequality import gini_coefficient, top_share
from repro.traces.millisecond import RequestTrace


@dataclass(frozen=True)
class SpatialAnalysis:
    """Spatial characterization of one trace.

    Attributes
    ----------
    n_zones:
        Number of equal zones the address space was divided into.
    zone_gini:
        Gini coefficient of per-zone byte traffic (0 = uniform).
    hot_zone_share:
        Share of bytes landing in the busiest 10 % of zones.
    touched_fraction:
        Fraction of zones receiving any traffic at all (the footprint).
    mean_jump_sectors, median_jump_sectors:
        Absolute LBA distance between consecutive requests.
    sequential_fraction:
        Fraction of requests starting exactly where the previous ended.
    mean_run_length:
        Mean number of requests per sequential run.
    """

    n_zones: int
    zone_gini: float
    hot_zone_share: float
    touched_fraction: float
    mean_jump_sectors: float
    median_jump_sectors: float
    sequential_fraction: float
    mean_run_length: float


def zone_traffic(
    trace: RequestTrace, capacity_sectors: int, n_zones: int = 100
) -> np.ndarray:
    """Bytes of traffic per equal-size zone of the address space."""
    if not len(trace):
        raise AnalysisError(f"trace {trace.label!r} is empty; nothing to analyze")
    if n_zones <= 0:
        raise AnalysisError(f"n_zones must be > 0, got {n_zones!r}")
    if capacity_sectors <= 0:
        raise AnalysisError(f"capacity_sectors must be > 0, got {capacity_sectors!r}")
    zone_size = max(1, capacity_sectors // n_zones)
    zones = np.minimum(trace.lbas // zone_size, n_zones - 1).astype(int)
    return np.bincount(zones, weights=trace.nbytes.astype(float), minlength=n_zones)


def seek_distance_ecdf(trace: RequestTrace) -> Ecdf:
    """ECDF of absolute LBA jumps between consecutive requests (the
    queue-free proxy for seek distances)."""
    if len(trace) < 2:
        raise AnalysisError("seek-distance analysis needs at least 2 requests")
    prev_end = trace.lbas[:-1] + trace.nsectors[:-1]
    jumps = np.abs(trace.lbas[1:].astype(np.int64) - prev_end.astype(np.int64))
    return Ecdf(jumps.astype(float))


def run_length_distribution(trace: RequestTrace) -> np.ndarray:
    """Lengths (in requests) of the maximal sequential runs, in order."""
    if not len(trace):
        raise AnalysisError(f"trace {trace.label!r} is empty; nothing to analyze")
    if len(trace) == 1:
        return np.array([1])
    prev_end = trace.lbas[:-1] + trace.nsectors[:-1]
    continues = trace.lbas[1:] == prev_end
    runs = []
    current = 1
    for flag in continues:
        if flag:
            current += 1
        else:
            runs.append(current)
            current = 1
    runs.append(current)
    return np.asarray(runs)


def analyze_spatial(
    trace: RequestTrace, capacity_sectors: int, n_zones: int = 100
) -> SpatialAnalysis:
    """Full spatial characterization of a non-empty trace."""
    traffic = zone_traffic(trace, capacity_sectors, n_zones)
    runs = run_length_distribution(trace)
    if len(trace) >= 2:
        prev_end = trace.lbas[:-1] + trace.nsectors[:-1]
        jumps = np.abs(
            trace.lbas[1:].astype(np.int64) - prev_end.astype(np.int64)
        ).astype(float)
        mean_jump = float(jumps.mean())
        median_jump = float(np.median(jumps))
        seq = float(np.mean(jumps == 0))
    else:
        mean_jump = median_jump = float("nan")
        seq = float("nan")
    return SpatialAnalysis(
        n_zones=int(n_zones),
        zone_gini=gini_coefficient(traffic) if traffic.sum() > 0 else float("nan"),
        hot_zone_share=top_share(traffic, 0.1) if traffic.sum() > 0 else float("nan"),
        touched_fraction=float(np.mean(traffic > 0)),
        mean_jump_sectors=mean_jump,
        median_jump_sectors=median_jump,
        sequential_fraction=seq,
        mean_run_length=float(runs.mean()),
    )
