"""Idleness analysis: the availability and shape of idle time.

The paper's second finding is that drives "experience long stretches of
idleness". Two quantities make that precise:

* the distribution of idle-interval *lengths* (its heavy upper tail is
  the "long stretches"), and
* the *usability* of idle time: how much of the total idle time sits in
  intervals long enough for a background task that needs ``d`` seconds —
  the quantity that matters for background media scans, scrubbing and
  power management (the motivation the authors pursued in follow-on
  work).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.disk.timeline import BusyIdleTimeline
from repro.errors import AnalysisError
from repro.stats.ecdf import Ecdf
from repro.stats.fitting import best_fit
from repro.stats.tail import tail_heaviness_ratio


@dataclass(frozen=True)
class IdlenessAnalysis:
    """Idleness characterization of one timeline.

    Attributes
    ----------
    idle_fraction:
        Idle share of the observation window.
    n_intervals:
        Number of idle intervals.
    mean_interval, median_interval, p99_interval:
        Idle-interval length statistics, seconds.
    top_decile_time_share:
        Share of total idle *time* carried by the longest 10 % of
        intervals — the quantitative "long stretches" statement.
    best_fit_family:
        Which distribution family (exponential / lognormal / pareto)
        explains the interval lengths best by KS distance.
    """

    idle_fraction: float
    n_intervals: int
    mean_interval: float
    median_interval: float
    p99_interval: float
    top_decile_time_share: float
    best_fit_family: str


def analyze_idleness(timeline: BusyIdleTimeline) -> IdlenessAnalysis:
    """Characterize the idle intervals of a timeline.

    Raises :class:`AnalysisError` when the timeline has no idle interval
    (a saturated window genuinely has none — callers should treat that
    case explicitly, not receive fabricated zeros).
    """
    intervals = timeline.idle_periods()
    if intervals.size == 0:
        raise AnalysisError("timeline has no idle intervals (saturated window)")
    ecdf = Ecdf(intervals)
    try:
        family = best_fit(intervals).name
    except Exception:  # degenerate samples (all-equal) have no meaningful fit
        family = "degenerate"
    return IdlenessAnalysis(
        idle_fraction=timeline.total_idle / timeline.span if timeline.span else float("nan"),
        n_intervals=int(intervals.size),
        mean_interval=float(intervals.mean()),
        median_interval=ecdf.median,
        p99_interval=ecdf.quantile(0.99),
        top_decile_time_share=tail_heaviness_ratio(intervals, top_fraction=0.1),
        best_fit_family=family,
    )


def idle_interval_ecdf(timeline: BusyIdleTimeline) -> Ecdf:
    """ECDF of idle-interval lengths — the paper's idle-time CDF figure."""
    intervals = timeline.idle_periods()
    if intervals.size == 0:
        raise AnalysisError("timeline has no idle intervals (saturated window)")
    return Ecdf(intervals)


def idle_time_usability(
    timeline: BusyIdleTimeline, durations: Sequence[float]
) -> Tuple[np.ndarray, np.ndarray]:
    """Fraction of total idle *time* in intervals of at least each duration.

    Returns ``(durations, fractions)``. ``fractions[i]`` answers: "if a
    background task needs an uninterrupted ``durations[i]`` seconds, what
    share of the idle time lives in intervals that long or longer?" A
    heavy-tailed idle distribution keeps this near 1 far beyond the mean
    interval — the actionable form of "long stretches of idleness".
    """
    durations = np.asarray(sorted(durations), dtype=np.float64)
    if durations.size == 0:
        raise AnalysisError("need at least one duration")
    if np.any(durations < 0):
        raise AnalysisError("durations must be >= 0")
    intervals = timeline.idle_periods()
    total = intervals.sum() if intervals.size else 0.0
    if total == 0:
        return durations, np.zeros_like(durations)
    fractions = np.array(
        [intervals[intervals >= d].sum() / total for d in durations]
    )
    return durations, fractions


def idle_sequence_autocorrelation(
    timeline: BusyIdleTimeline, max_lag: int = 20
) -> np.ndarray:
    """Autocorrelation of *successive* idle-interval lengths.

    The authors' related work (long-range dependence at the disk level)
    shows idle periods are not independent: a long lull tends to follow
    a long lull. Positive low-lag values here are that dependence; a
    memoryless (Poisson) workload gives values near 0.
    """
    from repro.stats.autocorr import autocorrelation

    intervals = timeline.idle_periods()
    if intervals.size < max(8, max_lag + 1):
        raise AnalysisError(
            f"only {intervals.size} idle intervals; sequence analysis needs more"
        )
    return autocorrelation(intervals, max_lag=max_lag)


def chunks_available(
    timeline: BusyIdleTimeline, chunk_seconds: float, setup_seconds: float = 0.0
) -> int:
    """How many whole ``chunk_seconds`` chunks the idle intervals can host
    when entering an interval costs ``setup_seconds`` once.

    This is the capacity bound a scrub or scan planner compares its
    demand against: if the workload's idleness cannot host
    ``n_regions`` chunks, no policy finishes the pass in-window.
    """
    if chunk_seconds <= 0:
        raise AnalysisError(f"chunk_seconds must be > 0, got {chunk_seconds!r}")
    if setup_seconds < 0:
        raise AnalysisError(f"setup_seconds must be >= 0, got {setup_seconds!r}")
    intervals = timeline.idle_periods()
    if intervals.size == 0:
        return 0
    usable = np.maximum(intervals - setup_seconds, 0.0)
    return int(np.floor(usable / chunk_seconds).sum())


def usable_idle_time(
    timeline: BusyIdleTimeline, setup_cost: float
) -> float:
    """Total background-work seconds extractable from the idle intervals
    when starting work in an interval costs ``setup_cost`` seconds
    (spin-up, head reposition, context restore).

    Each interval contributes ``max(0, length - setup_cost)``.
    """
    if setup_cost < 0:
        raise AnalysisError(f"setup_cost must be >= 0, got {setup_cost!r}")
    intervals = timeline.idle_periods()
    if intervals.size == 0:
        return 0.0
    return float(np.maximum(intervals - setup_cost, 0.0).sum())
