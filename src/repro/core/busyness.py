"""Busy-period analysis: the complement of idleness.

Disk-level busy periods are typically *short* (one request or a small
queued batch) with a tail of long saturated episodes; their distribution
tells a scheduler how long "busy" lasts once it starts, and the long-run
tail is where the paper's hours-long full-bandwidth stretches live at
the millisecond scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


from repro.disk.timeline import BusyIdleTimeline
from repro.errors import AnalysisError
from repro.stats.ecdf import Ecdf
from repro.stats.tail import tail_heaviness_ratio


@dataclass(frozen=True)
class BusynessAnalysis:
    """Busy-period characterization of one timeline.

    Attributes
    ----------
    busy_fraction:
        Busy share of the observation window (the utilization).
    n_periods:
        Number of maximal busy periods.
    periods_per_hour:
        Busy-period arrival rate.
    mean_period, median_period, p99_period, longest_period:
        Busy-period length statistics, seconds.
    top_decile_time_share:
        Share of total busy time in the longest 10 % of periods.
    """

    busy_fraction: float
    n_periods: int
    periods_per_hour: float
    mean_period: float
    median_period: float
    p99_period: float
    longest_period: float
    top_decile_time_share: float


def analyze_busyness(timeline: BusyIdleTimeline) -> BusynessAnalysis:
    """Characterize the busy periods of a timeline.

    Raises :class:`AnalysisError` for an all-idle timeline (no busy
    period to describe).
    """
    periods = timeline.busy_periods()
    if periods.size == 0:
        raise AnalysisError("timeline has no busy periods (all-idle window)")
    ecdf = Ecdf(periods)
    per_hour = (
        timeline.n_busy_periods / (timeline.span / 3600.0) if timeline.span else float("nan")
    )
    return BusynessAnalysis(
        busy_fraction=timeline.utilization,
        n_periods=int(periods.size),
        periods_per_hour=per_hour,
        mean_period=float(periods.mean()),
        median_period=ecdf.median,
        p99_period=ecdf.quantile(0.99),
        longest_period=float(periods.max()),
        top_decile_time_share=tail_heaviness_ratio(periods, top_fraction=0.1),
    )


def busy_period_ecdf(timeline: BusyIdleTimeline) -> Ecdf:
    """ECDF of busy-period lengths — the paper's busy-period CDF figure."""
    periods = timeline.busy_periods()
    if periods.size == 0:
        raise AnalysisError("timeline has no busy periods (all-idle window)")
    return Ecdf(periods)


def longest_sustained_load(
    timeline: BusyIdleTimeline, scale: float, threshold: float = 0.9
) -> Tuple[int, float]:
    """Longest run of consecutive ``scale``-second windows at or above
    ``threshold`` utilization.

    Returns ``(run_length_windows, run_length_seconds)``. At hour scale
    this is exactly the paper's "fully utilizing the available disk
    bandwidth for hours at a time" measurement.
    """
    if not 0.0 < threshold <= 1.0:
        raise AnalysisError(f"threshold must be in (0, 1], got {threshold!r}")
    series = timeline.utilization_series(scale)
    longest = current = 0
    for value in series:
        current = current + 1 if value >= threshold else 0
        longest = max(longest, current)
    return longest, longest * scale
