"""Lifetime-trace generator: cumulative counters across a drive family.

The paper's Lifetime traces are cumulative read/write/power-on counters
from every drive of a family returned from, or surveyed in, the field.
The family-level analyses need the *distribution* of per-drive load, so
the generator models what produces it: drives deployed into different
roles, each role with its own intensity regime.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SynthesisError
from repro.traces.lifetime import DriveFamilyDataset, LifetimeRecord
from repro.units import MIB, SECONDS_PER_HOUR


@dataclass(frozen=True)
class FamilyModel:
    """Generator of :class:`~repro.traces.DriveFamilyDataset`.

    Drives are partitioned into three roles:

    * **mainstream** — the lognormal body: moderate lifetime-average
      utilization spread over orders of magnitude;
    * **near-idle** — spares and cold archives, 10x below the mainstream
      median;
    * **saturated** — the small sub-population that "fully utilizes the
      available disk bandwidth for hours at a time": lifetime-average
      utilization drawn near the bandwidth ceiling.

    Attributes
    ----------
    bandwidth:
        Sustained drive bandwidth in bytes/second (the utilization
        ceiling).
    median_util:
        Median lifetime-average utilization of mainstream drives.
    util_sigma:
        Sigma of the mainstream lognormal utilization spread.
    idle_fraction, saturated_fraction:
        Role probabilities (the remainder is mainstream). Their sum must
        stay **strictly below 1** so a mainstream population exists;
        violating this raises :class:`~repro.errors.SynthesisError`.
    min_age_hours, max_age_hours:
        Uniform range of power-on hours across the family.
    write_fraction_mean, write_fraction_spread:
        Mean and half-range of the per-drive lifetime write byte fraction.
    """

    bandwidth: float = 80.0 * MIB
    median_util: float = 0.05
    util_sigma: float = 1.1
    idle_fraction: float = 0.10
    saturated_fraction: float = 0.04
    min_age_hours: float = 24.0 * 30
    max_age_hours: float = 24.0 * 365 * 4
    write_fraction_mean: float = 0.62
    write_fraction_spread: float = 0.25

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise SynthesisError(f"bandwidth must be > 0, got {self.bandwidth!r}")
        if not 0.0 < self.median_util <= 1.0:
            raise SynthesisError(
                f"median_util must be in (0, 1], got {self.median_util!r}"
            )
        if self.util_sigma <= 0:
            raise SynthesisError(f"util_sigma must be > 0, got {self.util_sigma!r}")
        if self.idle_fraction < 0 or self.saturated_fraction < 0:
            raise SynthesisError("role fractions must be >= 0")
        if self.idle_fraction + self.saturated_fraction >= 1.0:
            raise SynthesisError("role fractions must leave room for mainstream drives")
        if not 0.0 < self.write_fraction_mean < 1.0:
            raise SynthesisError(
                f"write_fraction_mean must be in (0, 1), got {self.write_fraction_mean!r}"
            )
        if self.write_fraction_spread < 0:
            raise SynthesisError(
                f"write_fraction_spread must be >= 0, got {self.write_fraction_spread!r}"
            )
        if not 0 < self.min_age_hours <= self.max_age_hours:
            raise SynthesisError(
                "need 0 < min_age_hours <= max_age_hours, got "
                f"{self.min_age_hours!r} and {self.max_age_hours!r}"
            )

    def intensity_multipliers(self, n: int, seed: int = 0) -> np.ndarray:
        """Per-deployment intensity multipliers relative to the mainstream median.

        Draws ``n`` samples from the same role-partitioned intensity model
        that :meth:`generate` uses for lifetime utilization, but expressed
        as dimensionless multipliers of the mainstream median load (a
        mainstream drive at the median draws 1.0). The fleet layer uses
        these to scale per-tenant request rates so a simulated fleet
        reproduces the family's heavy-tailed load skew: near-idle tenants
        land ~10x below the median, saturated tenants near the bandwidth
        ceiling.

        Deterministic in ``seed``.
        """
        if n <= 0:
            raise SynthesisError(f"n must be > 0, got {n!r}")
        rng = np.random.default_rng(seed)
        roles = rng.choice(
            3,
            size=n,
            p=[
                self.idle_fraction,
                1.0 - self.idle_fraction - self.saturated_fraction,
                self.saturated_fraction,
            ],
        )
        mult = rng.lognormal(0.0, self.util_sigma, size=n)
        mult[roles == 0] *= 0.1
        saturated = roles == 2
        mult[saturated] = rng.uniform(0.75, 0.98, size=int(saturated.sum())) / self.median_util
        return mult

    def generate(
        self, n_drives: int, seed: int = 0, family: str = "enterprise-10k"
    ) -> DriveFamilyDataset:
        """Generate lifetime records for ``n_drives`` drives.

        Deterministic in ``seed``; drive ids are ``fam0000`` upward.
        """
        if n_drives <= 0:
            raise SynthesisError(f"n_drives must be > 0, got {n_drives!r}")
        rng = np.random.default_rng(seed)
        roles = rng.choice(
            3,
            size=n_drives,
            p=[
                self.idle_fraction,
                1.0 - self.idle_fraction - self.saturated_fraction,
                self.saturated_fraction,
            ],
        )
        records = []
        for i in range(n_drives):
            age = float(rng.uniform(self.min_age_hours, self.max_age_hours))
            if roles[i] == 0:  # near-idle
                util = (self.median_util / 10.0) * rng.lognormal(0.0, self.util_sigma)
            elif roles[i] == 2:  # saturated
                util = float(rng.uniform(0.75, 0.98))
            else:  # mainstream
                util = self.median_util * rng.lognormal(0.0, self.util_sigma)
            util = min(util, 0.99)
            total = util * self.bandwidth * age * SECONDS_PER_HOUR
            wf = float(
                np.clip(
                    rng.normal(self.write_fraction_mean, self.write_fraction_spread / 2.0),
                    0.02,
                    0.98,
                )
            )
            records.append(
                LifetimeRecord(
                    drive_id=f"fam{i:04d}",
                    power_on_hours=age,
                    bytes_read=total * (1.0 - wf),
                    bytes_written=total * wf,
                    model=family,
                )
            )
        return DriveFamilyDataset(records, family=family)
