"""Day-long millisecond traces with diurnal rate modulation.

The bridge between the Millisecond and Hour granularities: one
request-level trace whose rate follows an hour-of-day curve. Aggregating
its byte counts into hourly bins yields exactly the kind of series the
Hour traces record — generated from the bottom up rather than sampled
from a counter model — which is what the deep cross-scale experiment
(F15) compares.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro.errors import SynthesisError
from repro.synth.workload import WorkloadProfile
from repro.traces.hourly import HourlyTrace
from repro.traces.millisecond import RequestTrace
from repro.units import HOURS_PER_DAY, SECONDS_PER_HOUR


def default_day_curve(day_night_ratio: float = 4.0) -> np.ndarray:
    """A smooth 24-value relative-rate curve peaking mid-afternoon with
    mean 1.0 (the same shape the hour-counter generator uses)."""
    if day_night_ratio <= 0:
        raise SynthesisError(f"day_night_ratio must be > 0, got {day_night_ratio!r}")
    hours = np.arange(HOURS_PER_DAY)
    phase = 2.0 * np.pi * (hours - 14) / HOURS_PER_DAY
    swing = (day_night_ratio - 1.0) / (day_night_ratio + 1.0)
    curve = 1.0 + swing * np.cos(phase)
    return curve / curve.mean()


@dataclass(frozen=True)
class DiurnalDay:
    """Recipe for a day-long millisecond trace.

    Attributes
    ----------
    profile:
        The base workload; its ``rate`` is the *daily mean* rate.
    curve:
        24 relative rate multipliers (normalized to mean 1 internally).
    """

    profile: WorkloadProfile
    curve: Sequence[float] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        curve = self.curve if self.curve is not None else default_day_curve()
        curve = np.asarray(curve, dtype=np.float64)
        if curve.shape != (HOURS_PER_DAY,):
            raise SynthesisError(
                f"curve must have 24 entries, got shape {curve.shape}"
            )
        if np.any(curve < 0) or curve.sum() == 0:
            raise SynthesisError("curve must be non-negative with a positive sum")
        object.__setattr__(self, "curve", curve / curve.mean())

    def synthesize(self, capacity_sectors: int, seed: int = 0) -> RequestTrace:
        """One 24-hour trace: each hour generated at its modulated rate
        and concatenated on a single clock. Deterministic in ``seed``."""
        segments = []
        for hour in range(HOURS_PER_DAY):
            rate = self.profile.rate * float(self.curve[hour])
            if rate <= 0:
                segments.append(
                    RequestTrace.empty(span=SECONDS_PER_HOUR, label=self.profile.name)
                )
                continue
            hour_profile = replace(self.profile, rate=rate)
            segments.append(
                hour_profile.synthesize(
                    span=SECONDS_PER_HOUR,
                    capacity_sectors=capacity_sectors,
                    seed=seed * HOURS_PER_DAY + hour,
                )
            )
        day = segments[0]
        for segment in segments[1:]:
            day = day.concat(segment)
        return RequestTrace(
            day.times, day.lbas, day.nsectors, day.is_write,
            span=day.span, label=f"{self.profile.name}@day",
        )


def hourly_from_trace(trace: RequestTrace, drive_id: str = "derived") -> HourlyTrace:
    """Aggregate a millisecond trace into per-hour read/write counters —
    the exact operation a drive's hourly logging performs."""
    if trace.span <= 0:
        raise SynthesisError("trace span must be positive")
    read_bytes = trace.reads().byte_series(SECONDS_PER_HOUR)
    write_bytes = trace.writes().byte_series(SECONDS_PER_HOUR)
    return HourlyTrace(
        drive_id=drive_id, read_bytes=read_bytes, write_bytes=write_bytes
    )
