"""Arrival-process generators.

Each generator returns a sorted array of arrival times in ``[0, span)``.
The menu spans the burstiness spectrum the paper's analyses distinguish:

* :func:`poisson_arrivals` — the memoryless baseline (IDC = 1 at every
  scale);
* :func:`mmpp_arrivals` — Markov-modulated Poisson: bursty at the scale
  of the modulating chain, Poisson beyond it;
* :func:`onoff_arrivals` — ON/OFF with (optionally heavy-tailed) period
  lengths: bursty over a wide scale range, long-range dependent when the
  periods are Pareto with 1 < alpha < 2;
* :func:`bmodel_arrivals` — the b-model multiplicative cascade of Wang
  et al.: burstiness at *every* dyadic scale by construction, the
  canonical generator for "bursty across all time scales".
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import SynthesisError


def _check_span_rate(span: float, rate: float) -> None:
    if span <= 0:
        raise SynthesisError(f"span must be > 0, got {span!r}")
    if rate <= 0:
        raise SynthesisError(f"rate must be > 0, got {rate!r}")


def pareto_sample(
    rng: np.random.Generator, alpha: float, xm: float, size: int
) -> np.ndarray:
    """Draw ``size`` Pareto(``alpha``, scale ``xm``) variates by inverse
    transform: heavy-tailed for small ``alpha`` (infinite variance below
    2, infinite mean at or below 1)."""
    if alpha <= 0:
        raise SynthesisError(f"Pareto alpha must be > 0, got {alpha!r}")
    if xm <= 0:
        raise SynthesisError(f"Pareto scale must be > 0, got {xm!r}")
    u = rng.uniform(size=size)
    return xm / np.power(1.0 - u, 1.0 / alpha)


def poisson_arrivals(
    rng: np.random.Generator, rate: float, span: float
) -> np.ndarray:
    """Homogeneous Poisson arrivals at ``rate`` requests/second."""
    _check_span_rate(span, rate)
    # Draw ~expected + slack gaps at once, extend in the rare shortfall.
    times = []
    clock = 0.0
    batch = max(16, int(rate * span * 1.2) + 8)
    while clock < span:
        gaps = rng.exponential(1.0 / rate, size=batch)
        arrivals = clock + np.cumsum(gaps)
        times.append(arrivals)
        clock = float(arrivals[-1])
    all_times = np.concatenate(times)
    return all_times[all_times < span]


def onoff_arrivals(
    rng: np.random.Generator,
    rate_on: float,
    span: float,
    mean_on: float,
    mean_off: float,
    on_alpha: float = 1.5,
    off_alpha: float = 1.5,
) -> np.ndarray:
    """ON/OFF arrivals: Poisson at ``rate_on`` during ON periods, silent
    during OFF periods.

    Period lengths are Pareto with the given tail indices and the given
    means (``alpha`` must exceed 1 so the mean exists). Tail indices
    below 2 give the infinite-variance periods that produce long-range
    dependence in the count process.
    """
    _check_span_rate(span, rate_on)
    for name, alpha in (("on_alpha", on_alpha), ("off_alpha", off_alpha)):
        if alpha <= 1.0:
            raise SynthesisError(f"{name} must be > 1 so the mean exists, got {alpha!r}")
    for name, mean in (("mean_on", mean_on), ("mean_off", mean_off)):
        if mean <= 0:
            raise SynthesisError(f"{name} must be > 0, got {mean!r}")
    # Pareto mean is alpha*xm/(alpha-1); solve for the scale.
    xm_on = mean_on * (on_alpha - 1.0) / on_alpha
    xm_off = mean_off * (off_alpha - 1.0) / off_alpha

    times = []
    clock = 0.0
    # Start in a random phase so ensembles don't synchronize at t=0.
    in_on = bool(rng.uniform() < mean_on / (mean_on + mean_off))
    while clock < span:
        if in_on:
            duration = float(pareto_sample(rng, on_alpha, xm_on, 1)[0])
            end = min(clock + duration, span)
            expected = rate_on * (end - clock)
            count = rng.poisson(expected)
            if count:
                times.append(rng.uniform(clock, end, size=count))
            clock += duration
        else:
            clock += float(pareto_sample(rng, off_alpha, xm_off, 1)[0])
        in_on = not in_on
    if not times:
        return np.zeros(0)
    result = np.sort(np.concatenate(times))
    return result[result < span]


def mmpp_arrivals(
    rng: np.random.Generator,
    rates: Sequence[float],
    mean_holding: Sequence[float],
    span: float,
) -> np.ndarray:
    """Markov-modulated Poisson arrivals.

    The modulating chain cycles through its states with exponential
    holding times of the given means (a cyclic chain keeps the interface
    small while covering the common 2- and 3-state fits used for disk
    traffic). ``rates`` may include 0 for silent states.
    """
    if span <= 0:
        raise SynthesisError(f"span must be > 0, got {span!r}")
    rates = list(rates)
    holdings = list(mean_holding)
    if len(rates) != len(holdings) or not rates:
        raise SynthesisError("rates and mean_holding must be equal-length, non-empty")
    if all(r <= 0 for r in rates):
        raise SynthesisError("at least one MMPP state needs a positive rate")
    if any(h <= 0 for h in holdings):
        raise SynthesisError("holding-time means must be > 0")

    times = []
    clock = 0.0
    state = int(rng.integers(len(rates)))
    while clock < span:
        duration = float(rng.exponential(holdings[state]))
        end = min(clock + duration, span)
        rate = rates[state]
        if rate > 0:
            count = rng.poisson(rate * (end - clock))
            if count:
                times.append(rng.uniform(clock, end, size=count))
        clock += duration
        state = (state + 1) % len(rates)
    if not times:
        return np.zeros(0)
    result = np.sort(np.concatenate(times))
    return result[result < span]


def bmodel_arrivals(
    rng: np.random.Generator,
    n_requests: int,
    span: float,
    bias: float = 0.7,
    min_bin: float = 1e-3,
) -> np.ndarray:
    """b-model (biased multiplicative cascade) arrivals.

    The span is split in half recursively; at each split a fraction
    ``bias`` of the events goes to one randomly chosen half and the rest
    to the other, until bins shrink to ``min_bin`` seconds. Events are
    placed uniformly inside their final bin. ``bias = 0.5`` degenerates
    to (approximately) uniform; values toward 1 concentrate traffic into
    ever-burstier clumps *at every scale* — the signature the paper
    observes in disk-level workloads.
    """
    if n_requests < 0:
        raise SynthesisError(f"n_requests must be >= 0, got {n_requests!r}")
    if span <= 0:
        raise SynthesisError(f"span must be > 0, got {span!r}")
    if not 0.5 <= bias < 1.0:
        raise SynthesisError(f"bias must be in [0.5, 1), got {bias!r}")
    if min_bin <= 0 or min_bin > span:
        raise SynthesisError(f"min_bin must be in (0, span], got {min_bin!r}")
    if n_requests == 0:
        return np.zeros(0)

    counts = np.array([n_requests], dtype=np.int64)
    width = span
    while width / 2.0 >= min_bin:
        left = rng.binomial(1, 0.5, size=counts.size).astype(bool)
        share = np.where(left, bias, 1.0 - bias)
        left_counts = rng.binomial(counts, share)
        counts = np.column_stack([left_counts, counts - left_counts]).reshape(-1)
        width /= 2.0
    nbins = counts.size
    bin_index = np.repeat(np.arange(nbins), counts)
    offsets = rng.uniform(size=bin_index.size)
    times = (bin_index + offsets) * (span / nbins)
    return np.sort(times[times < span])
