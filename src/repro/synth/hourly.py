"""Hour-trace generator: per-hour counters for a population of drives.

The paper's Hour traces log, per drive and per hour, how much was read
and written over weeks of production operation. This generator
reproduces the structure those analyses rely on:

* a diurnal cycle (business hours vs. night) and a weekly cycle
  (weekday vs. weekend) shared across drives,
* per-drive intensity spread over orders of magnitude (lognormal),
* hour-scale burstiness (lognormal multiplicative noise),
* a minority of drives that run *saturated for hours at a time*
  (backup/rebuild/batch episodes), the paper's most striking family-level
  observation,
* a write-leaning read/write split with its own per-drive personality.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SynthesisError
from repro.traces.hourly import HourlyDataset, HourlyTrace
from repro.units import HOURS_PER_DAY, HOURS_PER_WEEK, MIB, SECONDS_PER_HOUR


@dataclass(frozen=True)
class HourlyWorkloadModel:
    """Generator of :class:`~repro.traces.HourlyDataset`.

    Attributes
    ----------
    bandwidth:
        Drive sustained bandwidth in bytes/second; hourly traffic is
        capped at one hour of it.
    median_load:
        Median per-drive mean utilization of bandwidth (e.g. 0.05 = 5 %).
    load_sigma:
        Sigma of the lognormal per-drive intensity spread.
    day_night_ratio:
        Business-hour to night traffic ratio of the diurnal curve.
    weekend_factor:
        Weekend traffic as a fraction of weekday traffic.
    burst_sigma:
        Sigma of the per-hour lognormal noise (hour-scale burstiness).
    saturated_fraction:
        Fraction of drives that experience saturated episodes.
    episode_hours:
        Mean length of a saturated episode in hours.
    episodes_per_week:
        Mean number of saturated episodes per week for affected drives.
    write_fraction_mean, write_fraction_spread:
        Mean and half-range of the per-drive write byte fraction.
    """

    bandwidth: float = 80.0 * MIB
    median_load: float = 0.04
    load_sigma: float = 1.2
    day_night_ratio: float = 4.0
    weekend_factor: float = 0.45
    burst_sigma: float = 0.8
    saturated_fraction: float = 0.08
    episode_hours: float = 5.0
    episodes_per_week: float = 1.5
    write_fraction_mean: float = 0.62
    write_fraction_spread: float = 0.2

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise SynthesisError(f"bandwidth must be > 0, got {self.bandwidth!r}")
        if not 0.0 < self.median_load <= 1.0:
            raise SynthesisError(
                f"median_load must be in (0, 1], got {self.median_load!r}"
            )
        if not 0.0 <= self.saturated_fraction <= 1.0:
            raise SynthesisError(
                f"saturated_fraction must be in [0, 1], got {self.saturated_fraction!r}"
            )
        if self.episode_hours <= 0 or self.episodes_per_week < 0:
            raise SynthesisError("episode parameters must be positive")

    def _diurnal_curve(self) -> np.ndarray:
        """Relative traffic level per hour-of-week (mean 1.0)."""
        hours = np.arange(HOURS_PER_WEEK)
        hour_of_day = hours % HOURS_PER_DAY
        day = hours // HOURS_PER_DAY
        # A smooth day shape peaking mid-afternoon.
        phase = 2.0 * np.pi * (hour_of_day - 14) / HOURS_PER_DAY
        day_shape = 1.0 + (self.day_night_ratio - 1.0) / (self.day_night_ratio + 1.0) * np.cos(phase)
        weekend = day >= 5
        curve = day_shape * np.where(weekend, self.weekend_factor, 1.0)
        return curve / curve.mean()

    def generate(
        self, n_drives: int, weeks: int, seed: int = 0
    ) -> HourlyDataset:
        """Generate ``weeks`` of hourly counters for ``n_drives`` drives.

        Deterministic in ``seed``; drive ids are ``d0000`` upward.
        """
        if n_drives <= 0:
            raise SynthesisError(f"n_drives must be > 0, got {n_drives!r}")
        if weeks <= 0:
            raise SynthesisError(f"weeks must be > 0, got {weeks!r}")
        rng = np.random.default_rng(seed)
        n_hours = weeks * HOURS_PER_WEEK
        curve = np.tile(self._diurnal_curve(), weeks)
        hour_capacity = self.bandwidth * SECONDS_PER_HOUR

        traces = []
        for i in range(n_drives):
            base_util = self.median_load * rng.lognormal(0.0, self.load_sigma)
            noise = rng.lognormal(-self.burst_sigma ** 2 / 2.0, self.burst_sigma, n_hours)
            util = np.minimum(base_util * curve * noise, 1.0)

            if rng.uniform() < self.saturated_fraction:
                expected = self.episodes_per_week * weeks
                for _ in range(rng.poisson(expected)):
                    start = int(rng.integers(0, n_hours))
                    length = max(1, int(rng.exponential(self.episode_hours)))
                    util[start:start + length] = rng.uniform(0.92, 1.0)

            total = util * hour_capacity
            wf = np.clip(
                rng.normal(self.write_fraction_mean, self.write_fraction_spread / 2.0),
                0.02,
                0.98,
            )
            # Hour-to-hour wobble around the drive's personal mix.
            hourly_wf = np.clip(rng.normal(wf, 0.08, n_hours), 0.0, 1.0)
            traces.append(
                HourlyTrace(
                    drive_id=f"d{i:04d}",
                    read_bytes=total * (1.0 - hourly_wf),
                    write_bytes=total * hourly_wf,
                    start_hour=0,
                )
            )
        return HourlyDataset(traces)
