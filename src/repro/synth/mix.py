"""Read/write mix models.

The paper analyzes "the dynamics of the read and write traffic": not just
the average mix but how it moves over time. :class:`BernoulliMix` gives a
time-stationary mix; :class:`MarkovMix` produces runs of same-direction
requests (write bursts from cache destaging above the disk, read bursts
from scans), which is what makes the R:W ratio *dynamic* at short scales.

A mix model is a callable: given a count, return boolean is-write flags.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SynthesisError


class BernoulliMix:
    """Independent per-request direction with a fixed write probability."""

    def __init__(self, write_fraction: float) -> None:
        if not 0.0 <= write_fraction <= 1.0:
            raise SynthesisError(
                f"write_fraction must be in [0, 1], got {write_fraction!r}"
            )
        self.write_fraction = float(write_fraction)

    def generate(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Is-write flags for ``n`` requests."""
        return rng.uniform(size=n) < self.write_fraction


class MarkovMix:
    """Two-state Markov direction process: same-direction runs.

    Parameters
    ----------
    write_fraction:
        Stationary write probability.
    mean_run_length:
        Mean length of a same-direction run (>= 1). Longer runs mean the
        instantaneous mix swings further from the stationary value —
        more "dynamics" in the R:W ratio.
    """

    def __init__(self, write_fraction: float, mean_run_length: float = 8.0) -> None:
        if not 0.0 < write_fraction < 1.0:
            raise SynthesisError(
                "write_fraction must be in (0, 1) for a Markov mix, "
                f"got {write_fraction!r}"
            )
        if mean_run_length < 1.0:
            raise SynthesisError(
                f"mean_run_length must be >= 1, got {mean_run_length!r}"
            )
        self.write_fraction = float(write_fraction)
        self.mean_run_length = float(mean_run_length)
        # Switching probabilities chosen so the stationary distribution is
        # (write_fraction, 1 - write_fraction) and the mean sojourn in the
        # *more likely* state matches mean_run_length.
        switch = 1.0 / mean_run_length
        major = max(write_fraction, 1.0 - write_fraction)
        minor = 1.0 - major
        self._leave_major = switch
        self._leave_minor = min(1.0, switch * major / minor)
        self._major_is_write = write_fraction >= 0.5

    def generate(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Is-write flags for ``n`` requests."""
        flags = np.zeros(n, dtype=bool)
        if n == 0:
            return flags
        in_major = bool(
            rng.uniform() < max(self.write_fraction, 1.0 - self.write_fraction)
        )
        uniforms = rng.uniform(size=n)
        for i in range(n):
            flags[i] = in_major == self._major_is_write
            leave = self._leave_major if in_major else self._leave_minor
            if uniforms[i] < leave:
                in_major = not in_major
        return flags
