"""Self-similar traffic generators with a controllable Hurst parameter.

Two constructions from the self-similar traffic literature:

* :func:`fgn_counts` synthesizes fractional Gaussian noise exactly (the
  Davies-Harte circulant embedding) and uses it to modulate a Poisson
  rate, giving a count series whose Hurst parameter is dialed in
  directly — the right tool when an experiment needs "traffic with
  H = 0.8" as an input;
* :func:`superposed_onoff_arrivals` aggregates many heavy-tailed ON/OFF
  sources, the Taqqu-Willinger-Sherman construction that *explains* why
  aggregate storage traffic is self-similar (H = (3 - alpha) / 2).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SynthesisError
from repro.synth.arrivals import onoff_arrivals


def _fgn_autocovariance(n: int, hurst: float) -> np.ndarray:
    k = np.arange(n, dtype=np.float64)
    h2 = 2.0 * hurst
    return 0.5 * (
        np.abs(k + 1) ** h2 - 2.0 * np.abs(k) ** h2 + np.abs(k - 1) ** h2
    )


def fractional_gaussian_noise(
    rng: np.random.Generator, n: int, hurst: float
) -> np.ndarray:
    """Exact fGn of length ``n`` with Hurst parameter ``hurst`` by
    Davies-Harte circulant embedding (unit variance, zero mean).

    ``hurst`` must lie in (0, 1); 0.5 reduces to white noise.
    """
    if n <= 0:
        raise SynthesisError(f"n must be > 0, got {n!r}")
    if not 0.0 < hurst < 1.0:
        raise SynthesisError(f"hurst must be in (0, 1), got {hurst!r}")
    if hurst == 0.5:
        return rng.standard_normal(n)
    gamma = _fgn_autocovariance(n, hurst)
    # Circulant embedding of the covariance; eigenvalues via FFT.
    row = np.concatenate([gamma, gamma[-2:0:-1]])
    eigenvalues = np.fft.fft(row).real
    if np.min(eigenvalues) < -1e-8:
        raise SynthesisError(
            f"circulant embedding failed for hurst={hurst!r}, n={n!r}"
        )
    eigenvalues = np.maximum(eigenvalues, 0.0)
    m = row.size
    z = rng.standard_normal(m) + 1j * rng.standard_normal(m)
    spectrum = np.sqrt(eigenvalues / (2.0 * m)) * z
    sample = np.fft.fft(spectrum)
    return np.sqrt(2.0) * sample.real[:n]


def fgn_counts(
    rng: np.random.Generator,
    nbins: int,
    hurst: float,
    mean: float,
    cv: float = 0.5,
) -> np.ndarray:
    """A non-negative integer count series with long-range dependence.

    Fractional Gaussian noise modulates a Poisson intensity:
    ``intensity_i = max(0, mean * (1 + cv * fgn_i))`` and
    ``counts_i ~ Poisson(intensity_i)``. ``cv`` controls how strongly the
    modulation swings the rate.
    """
    if mean <= 0:
        raise SynthesisError(f"mean must be > 0, got {mean!r}")
    if cv < 0:
        raise SynthesisError(f"cv must be >= 0, got {cv!r}")
    noise = fractional_gaussian_noise(rng, nbins, hurst)
    intensity = np.maximum(0.0, mean * (1.0 + cv * noise))
    return rng.poisson(intensity).astype(np.int64)


def arrivals_from_counts(
    rng: np.random.Generator, counts: np.ndarray, scale: float
) -> np.ndarray:
    """Turn a per-bin count series into arrival times by placing each
    bin's events uniformly inside the bin (bin width ``scale`` seconds)."""
    counts = np.asarray(counts, dtype=np.int64)
    if np.any(counts < 0):
        raise SynthesisError("counts must be non-negative")
    if scale <= 0:
        raise SynthesisError(f"scale must be > 0, got {scale!r}")
    bin_index = np.repeat(np.arange(counts.size), counts)
    offsets = rng.uniform(size=bin_index.size)
    return np.sort((bin_index + offsets) * scale)


def superposed_onoff_arrivals(
    rng: np.random.Generator,
    total_rate: float,
    span: float,
    n_sources: int = 16,
    alpha: float = 1.5,
    mean_on: float = 0.5,
    mean_off: float = 2.0,
) -> np.ndarray:
    """Aggregate of ``n_sources`` independent Pareto ON/OFF streams whose
    combined mean rate is ``total_rate``.

    With period tail index ``1 < alpha < 2`` the aggregate converges to
    self-similar traffic with ``H = (3 - alpha) / 2``; the default
    ``alpha = 1.5`` targets H = 0.75.
    """
    if n_sources <= 0:
        raise SynthesisError(f"n_sources must be > 0, got {n_sources!r}")
    if total_rate <= 0:
        raise SynthesisError(f"total_rate must be > 0, got {total_rate!r}")
    duty_cycle = mean_on / (mean_on + mean_off)
    rate_on = total_rate / (n_sources * duty_cycle)
    streams = [
        onoff_arrivals(
            rng,
            rate_on=rate_on,
            span=span,
            mean_on=mean_on,
            mean_off=mean_off,
            on_alpha=alpha,
            off_alpha=alpha,
        )
        for _ in range(n_sources)
    ]
    nonempty = [s for s in streams if s.size]
    if not nonempty:
        return np.zeros(0)
    return np.sort(np.concatenate(nonempty))
