"""Workload profiles: the glue that turns component models into traces.

A :class:`WorkloadProfile` names a complete millisecond-trace recipe —
arrival process, spatial model, size model, read/write mix, target rate —
and synthesizes a :class:`~repro.traces.RequestTrace` against a concrete
drive capacity. Profiles are plain data, so experiments can tweak one
dimension (``replace(profile, rate=...)``) while holding the rest fixed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict

import numpy as np

from repro.errors import SynthesisError
from repro.synth.arrivals import (
    bmodel_arrivals,
    mmpp_arrivals,
    onoff_arrivals,
    poisson_arrivals,
)
from repro.synth.mix import BernoulliMix
from repro.synth.selfsimilar import (
    arrivals_from_counts,
    fgn_counts,
    superposed_onoff_arrivals,
)
from repro.synth.sizes import MixtureSizes
from repro.synth.spatial import SequentialRuns, UniformSpatial, ZipfHotspots
from repro.traces.millisecond import RequestTrace


@dataclass(frozen=True)
class ArrivalSpec:
    """Which arrival process to use and its shape parameters.

    ``model`` is one of ``'poisson'``, ``'onoff'``, ``'mmpp'``,
    ``'bmodel'``, ``'superposed'`` or ``'fgn'``; ``params`` holds that
    model's keyword arguments (everything except the RNG, the rate and
    the span, which the profile supplies).
    """

    model: str
    params: Dict[str, Any] = field(default_factory=dict)

    _MODELS = ("poisson", "onoff", "mmpp", "bmodel", "superposed", "fgn")

    def __post_init__(self) -> None:
        if self.model not in self._MODELS:
            raise SynthesisError(
                f"unknown arrival model {self.model!r}; expected one of {self._MODELS}"
            )

    def generate(
        self, rng: np.random.Generator, rate: float, span: float
    ) -> np.ndarray:
        """Arrival times in ``[0, span)`` targeting ``rate`` requests/s."""
        p = dict(self.params)
        if self.model == "poisson":
            return poisson_arrivals(rng, rate, span)
        if self.model == "onoff":
            mean_on = p.pop("mean_on", 0.5)
            mean_off = p.pop("mean_off", 2.0)
            duty = mean_on / (mean_on + mean_off)
            return onoff_arrivals(
                rng, rate_on=rate / duty, span=span,
                mean_on=mean_on, mean_off=mean_off, **p,
            )
        if self.model == "mmpp":
            ratios = p.pop("rate_ratios", (0.2, 3.0))
            holdings = p.pop("mean_holding", (2.0, 0.5))
            weights = np.asarray(holdings, dtype=np.float64)
            levels = np.asarray(ratios, dtype=np.float64)
            achieved = float(np.dot(levels, weights) / weights.sum())
            rates = [rate * r / achieved for r in levels]
            return mmpp_arrivals(rng, rates=rates, mean_holding=list(holdings), span=span)
        if self.model == "bmodel":
            n = int(rng.poisson(rate * span))
            return bmodel_arrivals(rng, n_requests=n, span=span, **p)
        if self.model == "superposed":
            return superposed_onoff_arrivals(rng, total_rate=rate, span=span, **p)
        # fgn: counts at a base scale, events placed inside bins.
        scale = p.pop("scale", 0.1)
        hurst = p.pop("hurst", 0.8)
        cv = p.pop("cv", 0.6)
        nbins = max(1, int(np.ceil(span / scale)))
        counts = fgn_counts(rng, nbins=nbins, hurst=hurst, mean=rate * scale, cv=cv)
        times = arrivals_from_counts(rng, counts, scale)
        return times[times < span]


@dataclass(frozen=True)
class WorkloadProfile:
    """A complete millisecond-trace recipe for one enterprise workload.

    Attributes
    ----------
    name:
        Identifier used in reports (e.g. ``'web'``).
    rate:
        Target mean arrival rate, requests/second.
    arrival:
        The arrival-process recipe.
    spatial:
        ``'uniform'``, ``'sequential'`` or ``'zipf'``.
    spatial_params:
        Keyword arguments of the chosen spatial model (capacity excluded).
    sizes:
        A size model (``generate(rng, n) -> sectors``).
    mix:
        A read/write mix model (``generate(rng, n) -> is_write``).
    description:
        One line for reports.
    """

    name: str
    rate: float
    arrival: ArrivalSpec
    spatial: str = "zipf"
    spatial_params: Dict[str, Any] = field(default_factory=dict)
    sizes: Any = field(default_factory=MixtureSizes.typical_enterprise)
    mix: Any = field(default_factory=lambda: BernoulliMix(0.6))
    description: str = ""

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise SynthesisError(f"rate must be > 0, got {self.rate!r}")
        if self.spatial not in ("uniform", "sequential", "zipf"):
            raise SynthesisError(
                f"unknown spatial model {self.spatial!r}; "
                "expected 'uniform', 'sequential' or 'zipf'"
            )

    def with_rate(self, rate: float) -> "WorkloadProfile":
        """A copy of this profile at a different target rate."""
        return replace(self, rate=rate)

    def _spatial_model(self, capacity_sectors: int):
        if self.spatial == "uniform":
            return UniformSpatial(capacity_sectors)
        if self.spatial == "sequential":
            return SequentialRuns(capacity_sectors, **self.spatial_params)
        return ZipfHotspots(capacity_sectors, **self.spatial_params)

    def synthesize(
        self, span: float, capacity_sectors: int, seed: int = 0
    ) -> RequestTrace:
        """Generate a millisecond trace of ``span`` seconds against a
        drive of ``capacity_sectors``. Deterministic in ``seed``."""
        if span <= 0:
            raise SynthesisError(f"span must be > 0, got {span!r}")
        rng = np.random.default_rng(seed)
        times = self.arrival.generate(rng, self.rate, span)
        n = times.size
        sizes = self.sizes.generate(rng, n)
        lbas = self._spatial_model(capacity_sectors).generate(rng, sizes)
        is_write = self.mix.generate(rng, n)
        return RequestTrace(
            times=times,
            lbas=lbas,
            nsectors=sizes,
            is_write=is_write,
            span=span,
            label=self.name,
            capacity_sectors=capacity_sectors,
        )
