"""Workload synthesis: statistically faithful substitutes for the paper's
proprietary trace sets.

The paper's Millisecond, Hour and Lifetime traces came from instrumented
production drives and were never released. This subpackage generates
synthetic equivalents whose *statistical structure* matches what the
paper (and the authors' related published work) reports:

* arrival processes from memoryless (Poisson) to bursty-at-all-scales
  (heavy-tailed ON/OFF, MMPP, b-model multiplicative cascade, and
  fractional-Gaussian-noise rate modulation) — :mod:`repro.synth.arrivals`
  and :mod:`repro.synth.selfsimilar`;
* disk-realistic spatial (LBA), size and read/write-mix processes —
  :mod:`repro.synth.spatial`, :mod:`repro.synth.sizes`,
  :mod:`repro.synth.mix`;
* named enterprise workload profiles gluing those together —
  :mod:`repro.synth.workload` and :mod:`repro.synth.profiles`;
* hour-counter and lifetime/family generators for the two coarser
  granularities — :mod:`repro.synth.hourly` and :mod:`repro.synth.family`.
"""

from repro.synth.arrivals import (
    bmodel_arrivals,
    mmpp_arrivals,
    onoff_arrivals,
    pareto_sample,
    poisson_arrivals,
)
from repro.synth.selfsimilar import arrivals_from_counts, fgn_counts, superposed_onoff_arrivals
from repro.synth.spatial import SequentialRuns, UniformSpatial, ZipfHotspots
from repro.synth.sizes import FixedSizes, LognormalSizes, MixtureSizes
from repro.synth.mix import BernoulliMix, MarkovMix
from repro.synth.workload import ArrivalSpec, WorkloadProfile
from repro.synth.profiles import available_profiles, get_profile
from repro.synth.hourly import HourlyWorkloadModel
from repro.synth.family import FamilyModel
from repro.synth.calibrate import (
    TraceFingerprint,
    TraceFit,
    TwinValidation,
    calibrate_profile,
    calibration_report,
    fingerprint,
    fit_from_trace,
    validate_twin,
)
from repro.synth.diurnal import DiurnalDay, default_day_curve, hourly_from_trace

__all__ = [
    "poisson_arrivals",
    "onoff_arrivals",
    "mmpp_arrivals",
    "bmodel_arrivals",
    "pareto_sample",
    "fgn_counts",
    "arrivals_from_counts",
    "superposed_onoff_arrivals",
    "UniformSpatial",
    "SequentialRuns",
    "ZipfHotspots",
    "FixedSizes",
    "MixtureSizes",
    "LognormalSizes",
    "BernoulliMix",
    "MarkovMix",
    "ArrivalSpec",
    "WorkloadProfile",
    "available_profiles",
    "get_profile",
    "HourlyWorkloadModel",
    "FamilyModel",
    "TraceFingerprint",
    "TraceFit",
    "TwinValidation",
    "fingerprint",
    "fit_from_trace",
    "calibrate_profile",
    "calibration_report",
    "validate_twin",
    "DiurnalDay",
    "default_day_curve",
    "hourly_from_trace",
]
