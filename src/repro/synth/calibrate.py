"""Trace calibration: fit a :class:`WorkloadProfile` to a target trace.

Given a real (or foreign) millisecond trace, build a synthetic profile
whose traces match its measurable statistics — rate, read/write mix and
its run structure, request-size distribution, spatial locality, and
burstiness class. This is how the library would be pointed at actual
enterprise traces if a user has them: fingerprint, calibrate, then run
every analysis on synthetic clones at any length or rate.

The fit is deliberately transparent: each dimension is estimated by a
documented closed-form or small search, not an opaque optimizer, so a
reviewer can audit what matched and what didn't
(:func:`calibration_report`).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.burstiness import analyze_burstiness
from repro.errors import AnalysisError, SynthesisError
from repro.stats.inequality import gini_coefficient
from repro.synth.mix import BernoulliMix, MarkovMix
from repro.synth.sizes import LognormalSizes, MixtureSizes
from repro.synth.workload import ArrivalSpec, WorkloadProfile
from repro.traces.millisecond import RequestTrace


@dataclass(frozen=True)
class TraceFingerprint:
    """The statistics calibration matches.

    Attributes mirror what :func:`calibrate_profile` fits: rate, mix and
    mix-run structure, size distribution summary, sequentiality, spatial
    concentration, and burstiness (interarrival CV, IDC growth, Hurst).
    """

    request_rate: float
    write_fraction: float
    mix_run_length: float
    mean_sectors: float
    median_sectors: float
    sequentiality: float
    spatial_gini: float
    interarrival_cv: float
    idc_growth: float
    hurst: float


def _first_arrival_view(trace: RequestTrace) -> RequestTrace:
    """Rebase ``trace`` so its clock starts at the first arrival.

    A capture sliced out of the middle of a longer recording keeps its
    original timestamps, so ``times[0]`` can sit far from 0 while the
    span still counts from 0 — which deflates the rate and pads the
    count series with phantom idle bins. All calibration statistics are
    measured from the first arrival instead, matching
    :mod:`repro.core.streaming`.
    """
    if not len(trace) or trace.times[0] == 0.0:
        return trace
    t0 = float(trace.times[0])
    return RequestTrace(
        times=trace.times - t0,
        lbas=trace.lbas,
        nsectors=trace.nsectors,
        is_write=trace.is_write,
        span=trace.span - t0,
        label=trace.label,
        capacity_sectors=trace.capacity_sectors,
    )


def _mix_run_length(is_write: np.ndarray) -> float:
    if is_write.size < 2:
        return 1.0
    changes = int(np.sum(is_write[1:] != is_write[:-1]))
    return is_write.size / (changes + 1)


def _spatial_gini(trace: RequestTrace, n_zones: int = 64) -> float:
    span_sectors = int(trace.lbas.max() + trace.nsectors.max()) if len(trace) else 1
    zone_size = max(1, span_sectors // n_zones)
    zones = np.minimum(trace.lbas // zone_size, n_zones - 1)
    counts = np.bincount(zones.astype(int), minlength=n_zones).astype(float)
    return gini_coefficient(counts)


def fingerprint(trace: RequestTrace, base_scale: float = 0.01) -> TraceFingerprint:
    """Measure the statistics a calibration will match.

    The clock is rebased to the first arrival before anything is
    measured (see :func:`_first_arrival_view`), so mid-capture traces —
    whose timestamps start far from 0 — fingerprint identically to the
    same requests shifted to the origin.
    """
    if len(trace) < 32:
        raise AnalysisError(
            f"trace {trace.label!r} has {len(trace)} requests; "
            "fingerprinting needs at least 32"
        )
    trace = _first_arrival_view(trace)
    gaps = trace.interarrival_times()
    cv = float(gaps.std(ddof=1) / gaps.mean()) if gaps.mean() > 0 else float("nan")
    try:
        burst = analyze_burstiness(trace, base_scale=base_scale)
        growth, hurst = burst.idc_growth, burst.hurst_variance
    except AnalysisError:
        growth, hurst = float("nan"), float("nan")
    return TraceFingerprint(
        request_rate=trace.request_rate,
        write_fraction=trace.write_fraction,
        mix_run_length=_mix_run_length(trace.is_write),
        mean_sectors=float(trace.nsectors.mean()),
        median_sectors=float(np.median(trace.nsectors)),
        sequentiality=trace.sequentiality(),
        spatial_gini=_spatial_gini(trace),
        interarrival_cv=cv,
        idc_growth=growth,
        hurst=hurst,
    )


def _fit_sizes(trace: RequestTrace):
    values, counts = np.unique(trace.nsectors, return_counts=True)
    if values.size <= 32:
        return MixtureSizes(values.tolist(), counts.astype(float).tolist())
    logs = np.log(trace.nsectors.astype(float))
    sigma = float(max(logs.std(ddof=0), 1e-3))
    return LognormalSizes(
        median_sectors=float(np.median(trace.nsectors)), sigma=sigma,
        cap_sectors=int(trace.nsectors.max()),
    )


def _fit_mix(trace: RequestTrace):
    wf = trace.write_fraction
    if not 0.0 < wf < 1.0:
        return BernoulliMix(float(np.clip(wf, 0.0, 1.0)))
    run = _mix_run_length(trace.is_write)
    if run > 2.0:
        return MarkovMix(wf, mean_run_length=run)
    return BernoulliMix(wf)


def _fit_spatial(fp: TraceFingerprint):
    if fp.sequentiality > 0.2:
        run = min(1.0 / max(1.0 - fp.sequentiality, 1e-3), 512.0)
        return "sequential", {"mean_run_length": run}
    if fp.spatial_gini > 0.3:
        # A coarse monotone map from observed zone concentration to a
        # Zipf exponent; exact inversion is not needed because the
        # calibration report verifies the achieved concentration.
        exponent = float(np.interp(fp.spatial_gini, [0.3, 0.5, 0.7, 0.9], [0.5, 1.0, 1.4, 2.0]))
        return "zipf", {"n_zones": 64, "exponent": exponent}
    return "uniform", {}


def _fit_arrival(fp: TraceFingerprint) -> ArrivalSpec:
    growth = fp.idc_growth
    if not np.isfinite(growth) or (fp.interarrival_cv < 1.3 and growth < 3.0):
        return ArrivalSpec("poisson")
    if growth < 10.0:
        return ArrivalSpec("mmpp", {"rate_ratios": (0.3, 3.0), "mean_holding": (2.0, 0.6)})
    # Strongly scale-spanning burstiness: b-model, bias mapped from the
    # measured Hurst (bias 0.5 -> H 0.5; bias ~0.85 -> H ~0.95).
    hurst = fp.hurst if np.isfinite(fp.hurst) else 0.8
    bias = float(np.clip(np.interp(hurst, [0.5, 0.65, 0.8, 0.95], [0.5, 0.62, 0.72, 0.85]), 0.5, 0.9))
    return ArrivalSpec("bmodel", {"bias": bias, "min_bin": 1e-2})


#: Candidate biases the b-model refinement search scores (plus the
#: Hurst-mapped starting point).
_BIAS_CANDIDATES = (0.55, 0.60, 0.65, 0.70, 0.75, 0.80)


def _counts_idc(times: np.ndarray, span: float, scale: float) -> float:
    """Index of dispersion of the count series of ``times`` at ``scale``."""
    nbins = max(2, int(np.ceil(span / scale)))
    counts, _ = np.histogram(times, bins=nbins, range=(0.0, nbins * scale))
    mean = counts.mean()
    return float(counts.var() / mean) if mean > 0 else float("nan")


def _refine_bmodel_bias(
    trace: RequestTrace, fp: TraceFingerprint, spec: ArrivalSpec
) -> ArrivalSpec:
    """Small search replacing the Hurst-mapped b-model bias with the
    candidate whose synthetic count series best matches the trace's
    index of dispersion across three span-relative timescales.

    The Hurst map is a coarse prior; two traces with the same Hurst can
    sit an order of magnitude apart in IDC. Each candidate bias
    generates arrival times (two fixed seeds, averaged — deterministic)
    and is scored by mean relative IDC error; ties keep the smaller
    bias. Only the arrival process is synthesized, so the search stays
    cheap even for large traces.
    """
    span = float(trace.span)
    scales = [span / 64.0, span / 16.0, span / 4.0]
    targets = [_counts_idc(trace.times, span, s) for s in scales]
    if not all(np.isfinite(t) and t > 0 for t in targets):
        return spec
    candidates = sorted(set(_BIAS_CANDIDATES) | {spec.params["bias"]})
    best_bias, best_score = spec.params["bias"], float("inf")
    for bias in candidates:
        candidate = ArrivalSpec("bmodel", {**spec.params, "bias": bias})
        errors = []
        for seed in (0, 1):
            times = candidate.generate(
                np.random.default_rng(seed), fp.request_rate, span
            )
            if times.size < 2:
                errors.append(float("inf"))
                continue
            errors.extend(
                abs(_counts_idc(times, span, s) - t) / t
                for s, t in zip(scales, targets)
            )
        score = float(np.mean(errors))
        if score < best_score - 1e-12:
            best_bias, best_score = bias, score
    return ArrivalSpec("bmodel", {**spec.params, "bias": float(best_bias)})


def _describe_model(obj) -> Dict[str, object]:
    """Serialize a sizes/mix model: class name plus its public state."""
    desc: Dict[str, object] = {"type": type(obj).__name__}
    for key, value in vars(obj).items():
        if key.startswith("_"):
            continue
        if isinstance(value, np.ndarray):
            value = value.tolist()
        elif isinstance(value, (np.floating, np.integer)):
            value = value.item()
        desc[key] = value
    return desc


@dataclass(frozen=True)
class TraceFit:
    """A fitted synthetic twin: the profile plus every estimated parameter.

    ``profile`` is ready to synthesize; the ``arrival``/``sizes``/
    ``mix``/``spatial`` dicts expose what was estimated in plain JSON
    types so fits can be reported, diffed, and persisted.
    """

    profile: WorkloadProfile
    fingerprint: TraceFingerprint
    arrival: Dict[str, object]
    sizes: Dict[str, object]
    mix: Dict[str, object]
    spatial: Dict[str, object]

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary of the fit."""
        return {
            "profile": self.profile.name,
            "rate": self.profile.rate,
            "fingerprint": asdict(self.fingerprint),
            "arrival": self.arrival,
            "sizes": self.sizes,
            "mix": self.mix,
            "spatial": self.spatial,
        }


def fit_from_trace(
    trace: RequestTrace, name: str = "", base_scale: float = 0.01
) -> TraceFit:
    """Estimate every synthesis parameter from ``trace``.

    Fits the arrival process (Poisson/MMPP/b-model by burstiness class),
    the size mix (empirical mixture or lognormal), the read/write ratio
    and its run structure (Bernoulli or Markov), and the spatial-locality
    model (sequential runs / Zipf hotspots / uniform) — then packages
    them as a synthesizable :class:`~repro.synth.workload.WorkloadProfile`
    alongside the raw estimates. Check the fit with
    :func:`validate_twin` or :func:`calibration_report`.
    """
    fp = fingerprint(trace, base_scale=base_scale)
    spatial, spatial_params = _fit_spatial(fp)
    arrival = _fit_arrival(fp)
    if arrival.model == "bmodel":
        arrival = _refine_bmodel_bias(_first_arrival_view(trace), fp, arrival)
    sizes = _fit_sizes(trace)
    mix = _fit_mix(trace)
    profile = WorkloadProfile(
        name=name or f"{trace.label}~calibrated",
        rate=fp.request_rate,
        arrival=arrival,
        spatial=spatial,
        spatial_params=spatial_params,
        sizes=sizes,
        mix=mix,
        description=f"calibrated from trace {trace.label!r}",
    )
    return TraceFit(
        profile=profile,
        fingerprint=fp,
        arrival={"model": arrival.model, "params": dict(arrival.params)},
        sizes=_describe_model(sizes),
        mix=_describe_model(mix),
        spatial={"kind": spatial, "params": dict(spatial_params)},
    )


def calibrate_profile(
    trace: RequestTrace, name: str = "", base_scale: float = 0.01
) -> WorkloadProfile:
    """Fit a profile to ``trace``; synthesizing it reproduces the trace's
    fingerprint (verify with :func:`calibration_report`). Shorthand for
    ``fit_from_trace(...).profile``."""
    return fit_from_trace(trace, name=name, base_scale=base_scale).profile


def calibration_report(
    target: RequestTrace,
    profile: WorkloadProfile,
    capacity_sectors: int,
    span: float = 0.0,
    seed: int = 0,
) -> Dict[str, float]:
    """Synthesize from ``profile`` and compare fingerprints.

    Returns ``{statistic: relative_error}`` for rate, mix, size and
    sequentiality (absolute difference for fractions in [0, 1]).
    """
    if capacity_sectors <= 0:
        raise SynthesisError(
            f"capacity_sectors must be > 0, got {capacity_sectors!r}"
        )
    span = span or target.span
    clone = profile.synthesize(span=span, capacity_sectors=capacity_sectors, seed=seed)
    want = fingerprint(target)
    got = fingerprint(clone)
    return {
        "request_rate": _rel(want.request_rate, got.request_rate),
        "write_fraction": abs(got.write_fraction - want.write_fraction),
        "mean_sectors": _rel(want.mean_sectors, got.mean_sectors),
        "sequentiality": abs(got.sequentiality - want.sequentiality),
        "interarrival_cv": _rel(want.interarrival_cv, got.interarrival_cv),
    }


def _rel(a: float, b: float) -> float:
    """Relative error of ``b`` against target ``a`` (absolute when a=0)."""
    if a == 0:
        return abs(b)
    return abs(b - a) / abs(a)


#: Per-timescale statistics :func:`validate_twin` compares, in report order.
TWIN_STATS = ("rate", "count_cv", "idc", "idle_fraction")


def _scale_stats(trace: RequestTrace, scale: float) -> Optional[Dict[str, float]]:
    """Count-series statistics of ``trace`` at one timescale.

    ``rate`` is the mean bin count per second, ``count_cv`` the
    coefficient of variation across bins, ``idc`` the index of
    dispersion (variance/mean — the paper's burstiness measure), and
    ``idle_fraction`` the share of empty bins (idleness). ``None`` when
    the trace spans fewer than two bins at this scale.
    """
    counts = trace.counts(scale).astype(np.float64)
    if counts.size < 2:
        return None
    mean = float(counts.mean())
    if mean == 0.0:
        return None
    return {
        "rate": mean / scale,
        "count_cv": float(counts.std(ddof=0)) / mean,
        "idc": float(counts.var(ddof=0)) / mean,
        "idle_fraction": float(np.mean(counts == 0)),
    }


@dataclass(frozen=True)
class TwinValidation:
    """Per-timescale divergence between a real trace and its synthetic twin.

    ``per_scale`` maps each timescale (seconds) to
    ``{statistic: divergence}`` over :data:`TWIN_STATS` — relative error
    for magnitudes (``rate``, ``count_cv``, ``idc``), absolute
    difference for ``idle_fraction``. Scales where either trace is too
    short to bin hold NaN and are excluded from ``max_divergence``.
    """

    trace_label: str
    twin_label: str
    scales: Tuple[float, ...]
    per_scale: Dict[float, Dict[str, float]]
    max_divergence: float

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary (scale keys become strings)."""
        return {
            "trace": self.trace_label,
            "twin": self.twin_label,
            "scales": list(self.scales),
            "per_scale": {
                f"{scale:g}": dict(stats) for scale, stats in self.per_scale.items()
            },
            "max_divergence": self.max_divergence,
        }


def validate_twin(
    trace: RequestTrace,
    fit: Optional[Union[TraceFit, WorkloadProfile]] = None,
    scales: Sequence[float] = (0.1, 1.0, 10.0),
    seed: int = 0,
    capacity_sectors: Optional[int] = None,
    base_scale: float = 0.01,
) -> TwinValidation:
    """Replay the real trace and its fitted twin through the
    multi-timescale lens and report where they diverge.

    Synthesizes one twin over the trace's (first-arrival) span, then at
    each timescale compares the two count series on rate, count CV,
    index of dispersion (burstiness) and empty-bin fraction (idleness).
    ``fit`` may be a :class:`TraceFit`, a bare profile, or ``None`` to
    fit from ``trace`` here. Capacity defaults to the trace's own, else
    the smallest capacity containing every request.
    """
    if not scales:
        raise SynthesisError("validate_twin needs at least one timescale")
    for scale in scales:
        if scale <= 0:
            raise SynthesisError(f"timescales must be > 0, got {scale!r}")
    if fit is None:
        fit = fit_from_trace(trace, base_scale=base_scale)
    profile = fit.profile if isinstance(fit, TraceFit) else fit
    trace = _first_arrival_view(trace)
    if capacity_sectors is None:
        capacity_sectors = trace.capacity_sectors
    if capacity_sectors is None:
        capacity_sectors = (
            int((trace.lbas + trace.nsectors).max()) if len(trace) else 1
        )
    twin = profile.synthesize(
        span=trace.span, capacity_sectors=capacity_sectors, seed=seed
    )
    per_scale: Dict[float, Dict[str, float]] = {}
    for scale in scales:
        want = _scale_stats(trace, scale)
        got = _scale_stats(twin, scale)
        if want is None or got is None:
            per_scale[float(scale)] = {key: float("nan") for key in TWIN_STATS}
            continue
        per_scale[float(scale)] = {
            "rate": _rel(want["rate"], got["rate"]),
            "count_cv": _rel(want["count_cv"], got["count_cv"]),
            "idc": _rel(want["idc"], got["idc"]),
            "idle_fraction": abs(got["idle_fraction"] - want["idle_fraction"]),
        }
    finite = [
        value
        for stats in per_scale.values()
        for value in stats.values()
        if np.isfinite(value)
    ]
    return TwinValidation(
        trace_label=trace.label,
        twin_label=twin.label,
        scales=tuple(float(s) for s in scales),
        per_scale=per_scale,
        max_divergence=max(finite) if finite else float("nan"),
    )
