"""Trace calibration: fit a :class:`WorkloadProfile` to a target trace.

Given a real (or foreign) millisecond trace, build a synthetic profile
whose traces match its measurable statistics — rate, read/write mix and
its run structure, request-size distribution, spatial locality, and
burstiness class. This is how the library would be pointed at actual
enterprise traces if a user has them: fingerprint, calibrate, then run
every analysis on synthetic clones at any length or rate.

The fit is deliberately transparent: each dimension is estimated by a
documented closed-form or small search, not an opaque optimizer, so a
reviewer can audit what matched and what didn't
(:func:`calibration_report`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.core.burstiness import analyze_burstiness
from repro.errors import AnalysisError, SynthesisError
from repro.stats.inequality import gini_coefficient
from repro.synth.mix import BernoulliMix, MarkovMix
from repro.synth.sizes import LognormalSizes, MixtureSizes
from repro.synth.workload import ArrivalSpec, WorkloadProfile
from repro.traces.millisecond import RequestTrace


@dataclass(frozen=True)
class TraceFingerprint:
    """The statistics calibration matches.

    Attributes mirror what :func:`calibrate_profile` fits: rate, mix and
    mix-run structure, size distribution summary, sequentiality, spatial
    concentration, and burstiness (interarrival CV, IDC growth, Hurst).
    """

    request_rate: float
    write_fraction: float
    mix_run_length: float
    mean_sectors: float
    median_sectors: float
    sequentiality: float
    spatial_gini: float
    interarrival_cv: float
    idc_growth: float
    hurst: float


def _mix_run_length(is_write: np.ndarray) -> float:
    if is_write.size < 2:
        return 1.0
    changes = int(np.sum(is_write[1:] != is_write[:-1]))
    return is_write.size / (changes + 1)


def _spatial_gini(trace: RequestTrace, n_zones: int = 64) -> float:
    span_sectors = int(trace.lbas.max() + trace.nsectors.max()) if len(trace) else 1
    zone_size = max(1, span_sectors // n_zones)
    zones = np.minimum(trace.lbas // zone_size, n_zones - 1)
    counts = np.bincount(zones.astype(int), minlength=n_zones).astype(float)
    return gini_coefficient(counts)


def fingerprint(trace: RequestTrace, base_scale: float = 0.01) -> TraceFingerprint:
    """Measure the statistics a calibration will match."""
    if len(trace) < 32:
        raise AnalysisError(
            f"trace {trace.label!r} has {len(trace)} requests; "
            "fingerprinting needs at least 32"
        )
    gaps = trace.interarrival_times()
    cv = float(gaps.std(ddof=1) / gaps.mean()) if gaps.mean() > 0 else float("nan")
    try:
        burst = analyze_burstiness(trace, base_scale=base_scale)
        growth, hurst = burst.idc_growth, burst.hurst_variance
    except AnalysisError:
        growth, hurst = float("nan"), float("nan")
    return TraceFingerprint(
        request_rate=trace.request_rate,
        write_fraction=trace.write_fraction,
        mix_run_length=_mix_run_length(trace.is_write),
        mean_sectors=float(trace.nsectors.mean()),
        median_sectors=float(np.median(trace.nsectors)),
        sequentiality=trace.sequentiality(),
        spatial_gini=_spatial_gini(trace),
        interarrival_cv=cv,
        idc_growth=growth,
        hurst=hurst,
    )


def _fit_sizes(trace: RequestTrace):
    values, counts = np.unique(trace.nsectors, return_counts=True)
    if values.size <= 32:
        return MixtureSizes(values.tolist(), counts.astype(float).tolist())
    logs = np.log(trace.nsectors.astype(float))
    sigma = float(max(logs.std(ddof=0), 1e-3))
    return LognormalSizes(
        median_sectors=float(np.median(trace.nsectors)), sigma=sigma,
        cap_sectors=int(trace.nsectors.max()),
    )


def _fit_mix(trace: RequestTrace):
    wf = trace.write_fraction
    if not 0.0 < wf < 1.0:
        return BernoulliMix(float(np.clip(wf, 0.0, 1.0)))
    run = _mix_run_length(trace.is_write)
    if run > 2.0:
        return MarkovMix(wf, mean_run_length=run)
    return BernoulliMix(wf)


def _fit_spatial(fp: TraceFingerprint):
    if fp.sequentiality > 0.2:
        run = min(1.0 / max(1.0 - fp.sequentiality, 1e-3), 512.0)
        return "sequential", {"mean_run_length": run}
    if fp.spatial_gini > 0.3:
        # A coarse monotone map from observed zone concentration to a
        # Zipf exponent; exact inversion is not needed because the
        # calibration report verifies the achieved concentration.
        exponent = float(np.interp(fp.spatial_gini, [0.3, 0.5, 0.7, 0.9], [0.5, 1.0, 1.4, 2.0]))
        return "zipf", {"n_zones": 64, "exponent": exponent}
    return "uniform", {}


def _fit_arrival(fp: TraceFingerprint) -> ArrivalSpec:
    growth = fp.idc_growth
    if not np.isfinite(growth) or (fp.interarrival_cv < 1.3 and growth < 3.0):
        return ArrivalSpec("poisson")
    if growth < 10.0:
        return ArrivalSpec("mmpp", {"rate_ratios": (0.3, 3.0), "mean_holding": (2.0, 0.6)})
    # Strongly scale-spanning burstiness: b-model, bias mapped from the
    # measured Hurst (bias 0.5 -> H 0.5; bias ~0.85 -> H ~0.95).
    hurst = fp.hurst if np.isfinite(fp.hurst) else 0.8
    bias = float(np.clip(np.interp(hurst, [0.5, 0.65, 0.8, 0.95], [0.5, 0.62, 0.72, 0.85]), 0.5, 0.9))
    return ArrivalSpec("bmodel", {"bias": bias, "min_bin": 1e-2})


def calibrate_profile(
    trace: RequestTrace, name: str = "", base_scale: float = 0.01
) -> WorkloadProfile:
    """Fit a profile to ``trace``; synthesizing it reproduces the trace's
    fingerprint (verify with :func:`calibration_report`)."""
    fp = fingerprint(trace, base_scale=base_scale)
    spatial, spatial_params = _fit_spatial(fp)
    return WorkloadProfile(
        name=name or f"{trace.label}~calibrated",
        rate=fp.request_rate,
        arrival=_fit_arrival(fp),
        spatial=spatial,
        spatial_params=spatial_params,
        sizes=_fit_sizes(trace),
        mix=_fit_mix(trace),
        description=f"calibrated from trace {trace.label!r}",
    )


def calibration_report(
    target: RequestTrace,
    profile: WorkloadProfile,
    capacity_sectors: int,
    span: float = 0.0,
    seed: int = 0,
) -> Dict[str, float]:
    """Synthesize from ``profile`` and compare fingerprints.

    Returns ``{statistic: relative_error}`` for rate, mix, size and
    sequentiality (absolute difference for fractions in [0, 1]).
    """
    if capacity_sectors <= 0:
        raise SynthesisError(
            f"capacity_sectors must be > 0, got {capacity_sectors!r}"
        )
    span = span or target.span
    clone = profile.synthesize(span=span, capacity_sectors=capacity_sectors, seed=seed)
    want = fingerprint(target)
    got = fingerprint(clone)

    def rel(a: float, b: float) -> float:
        if a == 0:
            return abs(b)
        return abs(b - a) / abs(a)

    return {
        "request_rate": rel(want.request_rate, got.request_rate),
        "write_fraction": abs(got.write_fraction - want.write_fraction),
        "mean_sectors": rel(want.mean_sectors, got.mean_sectors),
        "sequentiality": abs(got.sequentiality - want.sequentiality),
        "interarrival_cv": rel(want.interarrival_cv, got.interarrival_cv),
    }
