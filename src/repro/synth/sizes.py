"""Request-size models.

Disk-level request sizes cluster on a few powers of two (the file system
and page cache issue 4-64 KiB I/Os) with an occasional large streaming
transfer; :class:`MixtureSizes` captures that, :class:`FixedSizes` and
:class:`LognormalSizes` provide the simple and the smooth alternatives.

A size model is a callable: given a count, return per-request lengths in
sectors (always >= 1).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import SynthesisError
from repro.units import bytes_to_sectors


class FixedSizes:
    """Every request has the same length."""

    def __init__(self, nsectors: int) -> None:
        if nsectors <= 0:
            raise SynthesisError(f"nsectors must be > 0, got {nsectors!r}")
        self.nsectors = int(nsectors)

    def generate(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Lengths in sectors for ``n`` requests."""
        return np.full(n, self.nsectors, dtype=np.int64)


class MixtureSizes:
    """A discrete mixture over common transfer sizes.

    Parameters
    ----------
    sizes_sectors:
        Candidate lengths in sectors.
    weights:
        Relative probabilities (normalized internally).
    """

    def __init__(self, sizes_sectors: Sequence[int], weights: Sequence[float]) -> None:
        self.sizes = np.asarray(sizes_sectors, dtype=np.int64)
        raw = np.asarray(weights, dtype=np.float64)
        if self.sizes.size == 0 or self.sizes.size != raw.size:
            raise SynthesisError("sizes and weights must be equal-length, non-empty")
        if np.any(self.sizes <= 0):
            raise SynthesisError("sizes must be positive sector counts")
        if np.any(raw < 0) or raw.sum() <= 0:
            raise SynthesisError("weights must be non-negative with a positive sum")
        self.weights = raw / raw.sum()

    @classmethod
    def typical_enterprise(cls) -> "MixtureSizes":
        """The canonical enterprise mix: mostly 4-8 KiB pages, some 64 KiB
        readahead, rare 256 KiB streaming chunks."""
        return cls(
            sizes_sectors=[
                bytes_to_sectors(4 * 1024),
                bytes_to_sectors(8 * 1024),
                bytes_to_sectors(64 * 1024),
                bytes_to_sectors(256 * 1024),
            ],
            weights=[0.50, 0.25, 0.20, 0.05],
        )

    def generate(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Lengths in sectors for ``n`` requests."""
        return rng.choice(self.sizes, size=n, p=self.weights).astype(np.int64)

    @property
    def mean_sectors(self) -> float:
        """Expected request length in sectors."""
        return float(np.dot(self.sizes, self.weights))


class LognormalSizes:
    """Lognormal lengths, truncated below at one sector and above at an
    optional cap (keeps simulated transfers within command limits)."""

    def __init__(
        self, median_sectors: float, sigma: float = 1.0, cap_sectors: int = 1 << 14
    ) -> None:
        if median_sectors < 1:
            raise SynthesisError(
                f"median_sectors must be >= 1, got {median_sectors!r}"
            )
        if sigma <= 0:
            raise SynthesisError(f"sigma must be > 0, got {sigma!r}")
        if cap_sectors < 1:
            raise SynthesisError(f"cap_sectors must be >= 1, got {cap_sectors!r}")
        self.mu = float(np.log(median_sectors))
        self.sigma = float(sigma)
        self.cap_sectors = int(cap_sectors)

    def generate(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Lengths in sectors for ``n`` requests."""
        raw = rng.lognormal(self.mu, self.sigma, size=n)
        return np.clip(np.round(raw), 1, self.cap_sectors).astype(np.int64)
