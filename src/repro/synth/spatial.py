"""Spatial (LBA) models: where on the platter requests land.

The positioning cost the disk model charges — and therefore utilization —
depends on the access pattern's locality, so the spatial model matters as
much as the arrival process. Three models cover the realistic range:

* :class:`UniformSpatial` — every request lands anywhere (worst-case
  seeks; a useful stress baseline);
* :class:`SequentialRuns` — runs of back-to-back sequential requests
  interleaved with jumps, the classic file-server/streaming pattern;
* :class:`ZipfHotspots` — a Zipf-popular set of hot zones, the classic
  database/OLTP pattern.

A spatial model is a callable: given per-request sizes, return start
LBAs such that every request fits within the capacity.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SynthesisError


def _check_capacity(capacity_sectors: int) -> None:
    if capacity_sectors <= 0:
        raise SynthesisError(
            f"capacity_sectors must be > 0, got {capacity_sectors!r}"
        )


def _fit_start(start: np.ndarray, sizes: np.ndarray, capacity: int) -> np.ndarray:
    """Clamp start LBAs so ``start + size <= capacity`` element-wise."""
    limit = np.maximum(capacity - sizes, 0)
    return np.minimum(start, limit)


class UniformSpatial:
    """Starts drawn uniformly over the whole address space."""

    def __init__(self, capacity_sectors: int) -> None:
        _check_capacity(capacity_sectors)
        self.capacity_sectors = int(capacity_sectors)

    def generate(self, rng: np.random.Generator, sizes: np.ndarray) -> np.ndarray:
        """Start LBAs for requests of the given ``sizes``."""
        sizes = np.asarray(sizes, dtype=np.int64)
        starts = rng.integers(0, self.capacity_sectors, size=sizes.size)
        return _fit_start(starts, sizes, self.capacity_sectors)


class SequentialRuns:
    """Sequential runs: each request continues where the previous ended,
    until the run (geometric length) expires and the stream jumps to a
    uniformly random new position.

    Parameters
    ----------
    capacity_sectors:
        Address-space size.
    mean_run_length:
        Mean number of requests per sequential run (>= 1). The achieved
        sequentiality fraction is approximately ``1 - 1/mean_run_length``.
    """

    def __init__(self, capacity_sectors: int, mean_run_length: float = 8.0) -> None:
        _check_capacity(capacity_sectors)
        if mean_run_length < 1.0:
            raise SynthesisError(
                f"mean_run_length must be >= 1, got {mean_run_length!r}"
            )
        self.capacity_sectors = int(capacity_sectors)
        self.mean_run_length = float(mean_run_length)

    def generate(self, rng: np.random.Generator, sizes: np.ndarray) -> np.ndarray:
        """Start LBAs for requests of the given ``sizes``."""
        sizes = np.asarray(sizes, dtype=np.int64)
        n = sizes.size
        starts = np.zeros(n, dtype=np.int64)
        if n == 0:
            return starts
        continue_p = 1.0 - 1.0 / self.mean_run_length
        jumps = rng.uniform(size=n) >= continue_p
        jumps[0] = True
        position = 0
        for i in range(n):
            if jumps[i]:
                position = int(rng.integers(0, self.capacity_sectors))
            if position + sizes[i] > self.capacity_sectors:
                position = 0  # wrap a run that reaches the end of the disk
            starts[i] = position
            position += int(sizes[i])
        return starts


class ZipfHotspots:
    """Zipf-popular hot zones: the address space is divided into equal
    zones whose popularity follows a Zipf law; requests land uniformly
    inside their chosen zone.

    Parameters
    ----------
    capacity_sectors:
        Address-space size.
    n_zones:
        Number of equal-size zones.
    exponent:
        Zipf exponent (0 = uniform zone popularity; ~1 = classic skew).
    """

    def __init__(
        self, capacity_sectors: int, n_zones: int = 64, exponent: float = 1.0
    ) -> None:
        _check_capacity(capacity_sectors)
        if n_zones <= 0 or n_zones > capacity_sectors:
            raise SynthesisError(
                f"n_zones must be in [1, capacity], got {n_zones!r}"
            )
        if exponent < 0:
            raise SynthesisError(f"exponent must be >= 0, got {exponent!r}")
        self.capacity_sectors = int(capacity_sectors)
        self.n_zones = int(n_zones)
        self.exponent = float(exponent)
        weights = 1.0 / np.power(np.arange(1, self.n_zones + 1), self.exponent)
        self._popularity = weights / weights.sum()

    def generate(self, rng: np.random.Generator, sizes: np.ndarray) -> np.ndarray:
        """Start LBAs for requests of the given ``sizes``."""
        sizes = np.asarray(sizes, dtype=np.int64)
        n = sizes.size
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        # Popular zones are scattered over the platter (popularity rank
        # is not radial position), matching how hot tables and logs land.
        zone_of_rank = np.random.default_rng(12345).permutation(self.n_zones)
        ranks = rng.choice(self.n_zones, size=n, p=self._popularity)
        zones = zone_of_rank[ranks]
        zone_size = self.capacity_sectors // self.n_zones
        offsets = rng.integers(0, max(zone_size, 1), size=n)
        starts = zones.astype(np.int64) * zone_size + offsets
        return _fit_start(starts, sizes, self.capacity_sectors)
