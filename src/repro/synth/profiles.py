"""Named enterprise workload profiles.

These presets stand in for the paper's traced production servers. Rates,
mixes and localities follow the published characterizations of
disk-level enterprise traffic (the paper's own related work): moderate
request rates, write-dominated disk-level mixes (file-system caches
absorb most reads before they reach the disk), strong locality, and
bursty arrivals — plus a ``backup`` profile that drives the drive near
its bandwidth for long stretches, matching the saturated sub-population
the Lifetime traces expose.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import ProfileError
from repro.synth.mix import BernoulliMix, MarkovMix
from repro.synth.sizes import FixedSizes, MixtureSizes
from repro.synth.workload import ArrivalSpec, WorkloadProfile
from repro.units import bytes_to_sectors


def _build_profiles() -> Dict[str, WorkloadProfile]:
    profiles = {}

    profiles["web"] = WorkloadProfile(
        name="web",
        rate=25.0,
        arrival=ArrivalSpec("onoff", {"mean_on": 0.5, "mean_off": 2.0, "on_alpha": 1.4, "off_alpha": 1.4}),
        spatial="zipf",
        spatial_params={"n_zones": 64, "exponent": 1.0},
        sizes=MixtureSizes.typical_enterprise(),
        mix=MarkovMix(write_fraction=0.55, mean_run_length=6.0),
        description="web server: bursty ON/OFF arrivals, hot content zones",
    )

    profiles["email"] = WorkloadProfile(
        name="email",
        rate=40.0,
        arrival=ArrivalSpec("mmpp", {"rate_ratios": (0.3, 3.5), "mean_holding": (3.0, 0.6)}),
        spatial="zipf",
        spatial_params={"n_zones": 128, "exponent": 0.9},
        sizes=MixtureSizes(
            sizes_sectors=[bytes_to_sectors(4 * 1024), bytes_to_sectors(16 * 1024), bytes_to_sectors(64 * 1024)],
            weights=[0.55, 0.30, 0.15],
        ),
        mix=MarkovMix(write_fraction=0.70, mean_run_length=10.0),
        description="e-mail server: MMPP arrivals, write-heavy message store",
    )

    profiles["devel"] = WorkloadProfile(
        name="devel",
        rate=15.0,
        arrival=ArrivalSpec("bmodel", {"bias": 0.72, "min_bin": 1e-2}),
        spatial="sequential",
        spatial_params={"mean_run_length": 6.0},
        sizes=MixtureSizes.typical_enterprise(),
        mix=MarkovMix(write_fraction=0.60, mean_run_length=8.0),
        description="software development: cascade-bursty compile/edit cycles",
    )

    profiles["database"] = WorkloadProfile(
        name="database",
        rate=60.0,
        arrival=ArrivalSpec("mmpp", {"rate_ratios": (0.5, 2.5), "mean_holding": (1.0, 0.4)}),
        spatial="zipf",
        spatial_params={"n_zones": 256, "exponent": 1.2},
        sizes=MixtureSizes(
            sizes_sectors=[bytes_to_sectors(4 * 1024), bytes_to_sectors(8 * 1024)],
            weights=[0.6, 0.4],
        ),
        mix=MarkovMix(write_fraction=0.65, mean_run_length=12.0),
        description="OLTP database: small pages, hot tables and log, write-heavy",
    )

    profiles["fileserver"] = WorkloadProfile(
        name="fileserver",
        rate=20.0,
        arrival=ArrivalSpec("superposed", {"n_sources": 12, "alpha": 1.5}),
        spatial="sequential",
        spatial_params={"mean_run_length": 16.0},
        sizes=MixtureSizes(
            sizes_sectors=[bytes_to_sectors(8 * 1024), bytes_to_sectors(64 * 1024), bytes_to_sectors(256 * 1024)],
            weights=[0.35, 0.45, 0.20],
        ),
        mix=BernoulliMix(write_fraction=0.45),
        description="file server: many clients, long sequential runs, larger I/O",
    )

    profiles["backup"] = WorkloadProfile(
        name="backup",
        rate=280.0,
        arrival=ArrivalSpec("onoff", {"mean_on": 30.0, "mean_off": 5.0, "on_alpha": 2.5, "off_alpha": 2.5}),
        spatial="sequential",
        spatial_params={"mean_run_length": 64.0},
        sizes=FixedSizes(bytes_to_sectors(256 * 1024)),
        mix=BernoulliMix(write_fraction=0.05),
        description="backup window: streaming sequential reads near full bandwidth",
    )

    profiles["vod"] = WorkloadProfile(
        name="vod",
        rate=45.0,
        arrival=ArrivalSpec("superposed", {"n_sources": 24, "alpha": 1.6, "mean_on": 5.0, "mean_off": 10.0}),
        spatial="sequential",
        spatial_params={"mean_run_length": 32.0},
        sizes=MixtureSizes(
            sizes_sectors=[bytes_to_sectors(64 * 1024), bytes_to_sectors(256 * 1024)],
            weights=[0.4, 0.6],
        ),
        mix=BernoulliMix(write_fraction=0.08),
        description="video-on-demand: many concurrent sequential read streams",
    )

    profiles["hpc-scratch"] = WorkloadProfile(
        name="hpc-scratch",
        rate=35.0,
        arrival=ArrivalSpec("onoff", {"mean_on": 10.0, "mean_off": 60.0, "on_alpha": 1.8, "off_alpha": 1.8}),
        spatial="sequential",
        spatial_params={"mean_run_length": 48.0},
        sizes=MixtureSizes(
            sizes_sectors=[bytes_to_sectors(256 * 1024), bytes_to_sectors(1024 * 1024)],
            weights=[0.5, 0.5],
        ),
        mix=MarkovMix(write_fraction=0.85, mean_run_length=32.0),
        description="HPC scratch: checkpoint write bursts separated by long compute",
    )

    return profiles


_PROFILES = _build_profiles()


def available_profiles() -> Dict[str, WorkloadProfile]:
    """All named profiles, keyed by name (a fresh dict each call)."""
    return dict(_PROFILES)


def get_profile(name: str) -> WorkloadProfile:
    """Look up a profile by name; raises :class:`ProfileError` with the
    valid names when unknown."""
    try:
        return _PROFILES[name]
    except KeyError:
        raise ProfileError(
            f"unknown profile {name!r}; available: {sorted(_PROFILES)}"
        ) from None
