"""Multiplex several tenants' workloads onto one shared drive.

Each tenant owns an equal contiguous *volume* (an LBA slice) of the
shared drive, mirroring how cloud block storage carves virtual volumes
out of physical devices. Tenant request streams are synthesized (or
loaded) independently against their own volume, offset into the shared
address space, and merged into one time-ordered
:class:`~repro.traces.RequestTrace` plus a parallel per-request tenant
index used by the QoS layer to attribute response times back to
tenants.

Everything here is deterministic: per-tenant seeds come from
``numpy.random.SeedSequence(seed).spawn``, and the time-merge uses a
stable sort so simultaneous arrivals resolve by tenant order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import FleetError
from repro.fleet.tenant import TenantLoad
from repro.traces.millisecond import RequestTrace


@dataclass(frozen=True)
class TenantColumns:
    """One tenant's request stream, already offset into the shared LBA space."""

    tenant_id: str
    times: np.ndarray
    lbas: np.ndarray
    nsectors: np.ndarray
    is_write: np.ndarray
    span: float
    volume_start: int
    volume_sectors: int

    @property
    def n_requests(self) -> int:
        return int(self.times.size)


def volume_layout(capacity_sectors: int, n_tenants: int) -> Tuple[Tuple[int, int], ...]:
    """Equal contiguous ``(start, sectors)`` volume slices for each tenant."""
    if n_tenants <= 0:
        raise FleetError(f"n_tenants must be > 0, got {n_tenants!r}")
    per = capacity_sectors // n_tenants
    if per <= 0:
        raise FleetError(
            f"drive of {capacity_sectors} sectors cannot host {n_tenants} tenants"
        )
    return tuple((i * per, per) for i in range(n_tenants))


def synthesize_tenant_columns(
    tenants: Sequence[TenantLoad],
    capacity_sectors: int,
    span: float,
    seed: int = 0,
) -> Tuple[TenantColumns, ...]:
    """Generate each tenant's stream against its own volume.

    Profile tenants synthesize ``span`` seconds with a per-tenant seed
    spawned from ``seed``; trace tenants replay their capture (requests
    wrapped into the volume, sizes clipped) at the capture's own span.
    """
    layout = volume_layout(capacity_sectors, len(tenants))
    seeds = [int(s.generate_state(1)[0]) for s in np.random.SeedSequence(seed).spawn(len(tenants))]
    columns = []
    for k, tenant in enumerate(tenants):
        start, sectors = layout[k]
        if tenant.profile is not None:
            local = tenant.profile.synthesize(span, sectors, seed=seeds[k])
            times = local.times
            lbas = start + local.lbas
            nsectors = local.nsectors
            is_write = local.is_write
            tenant_span = float(local.span)
        else:
            loaded = tenant.trace.load()
            times = loaded.times
            nsectors = np.minimum(loaded.nsectors, sectors)
            lbas = start + loaded.lbas % np.maximum(1, sectors - nsectors + 1)
            is_write = loaded.is_write
            tenant_span = float(loaded.span)
        columns.append(
            TenantColumns(
                tenant_id=tenant.tenant_id,
                times=np.asarray(times, dtype=np.float64),
                lbas=np.asarray(lbas, dtype=np.int64),
                nsectors=np.asarray(nsectors, dtype=np.int64),
                is_write=np.asarray(is_write, dtype=bool),
                span=tenant_span,
                volume_start=start,
                volume_sectors=sectors,
            )
        )
    return tuple(columns)


def combine_columns(
    columns: Sequence[TenantColumns],
    span: float,
    capacity_sectors: int,
    subset: Optional[Sequence[int]] = None,
) -> Tuple[RequestTrace, np.ndarray]:
    """Merge tenant columns into one shared-drive trace.

    Returns the merged time-ordered trace and the parallel array of
    tenant indices (into ``columns``) for each merged request. Passing
    ``subset`` merges only those tenants — the QoS layer uses a
    single-tenant subset to measure a tenant's *isolated* tail.
    """
    chosen = list(range(len(columns))) if subset is None else list(subset)
    if not chosen:
        raise FleetError("combine_columns needs at least one tenant")
    times = np.concatenate([columns[k].times for k in chosen])
    lbas = np.concatenate([columns[k].lbas for k in chosen])
    nsectors = np.concatenate([columns[k].nsectors for k in chosen])
    is_write = np.concatenate([columns[k].is_write for k in chosen])
    tenant_idx = np.concatenate(
        [np.full(columns[k].times.size, k, dtype=np.int64) for k in chosen]
    )
    order = np.argsort(times, kind="stable")
    merged_span = max([span] + [columns[k].span for k in chosen])
    trace = RequestTrace(
        times[order],
        lbas[order],
        nsectors[order],
        is_write[order],
        span=merged_span,
        label="fleet-volume",
        capacity_sectors=capacity_sectors,
    )
    return trace, tenant_idx[order]
