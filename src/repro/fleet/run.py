"""Build and run a simulated fleet: tenants → placement → sharded suite.

:class:`FleetSpec` is the one-stop description of a fleet experiment;
:func:`build_fleet_plan` turns it into concrete
:class:`~repro.core.runner.ExperimentJob` rows (one per non-empty
drive, each carrying its tenant set and a per-drive seed spawned from
the fleet seed) and :func:`run_fleet` executes them through the sharded
runner mode so drives are partitioned across workers and merged into
one :class:`~repro.core.runner.SuiteReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

from repro.core.runner import ExperimentJob, ExperimentRunner, SuiteReport, derive_seeds
from repro.disk.drive import DriveSpec
from repro.errors import FleetError
from repro.fleet.placement import FleetPlacement, place_tenants
from repro.fleet.tenant import TenantLoad


@dataclass(frozen=True)
class FleetSpec:
    """Everything needed to simulate a multi-tenant fleet."""

    n_drives: int
    tenants: Tuple[TenantLoad, ...]
    drive: DriveSpec
    placement: str = "roundrobin"
    scheduler: str = "fcfs"
    span: float = 60.0
    seed: int = 0
    queue_depth: Optional[int] = None
    faults: Optional[Any] = None
    tier: Optional[Any] = None
    obs_level: str = "off"
    interference: bool = False

    def __post_init__(self) -> None:
        if self.n_drives < 1:
            raise FleetError(f"n_drives must be >= 1, got {self.n_drives!r}")
        if not self.tenants:
            raise FleetError("a fleet needs at least one tenant")
        if self.span <= 0:
            raise FleetError(f"span must be > 0, got {self.span!r}")


@dataclass(frozen=True)
class FleetPlan:
    """Placement plus the per-drive jobs it induces.

    ``drive_indices[i]`` is the physical drive number behind
    ``jobs[i]`` (drives with no tenants get no job).
    """

    spec: FleetSpec
    placement: FleetPlacement
    jobs: Tuple[ExperimentJob, ...] = field(default_factory=tuple)
    drive_indices: Tuple[int, ...] = field(default_factory=tuple)


def build_fleet_plan(spec: FleetSpec) -> FleetPlan:
    """Place tenants and build one job per occupied drive."""
    placement = place_tenants(spec.tenants, spec.n_drives, policy=spec.placement)
    seeds = derive_seeds(spec.seed, spec.n_drives)
    jobs = []
    drive_indices = []
    for d, assigned in enumerate(placement.assignments):
        if not assigned:
            continue
        jobs.append(
            ExperimentJob(
                profile=None,
                drive=spec.drive,
                scheduler=spec.scheduler,
                seed=seeds[d],
                span=spec.span,
                queue_depth=spec.queue_depth,
                faults=spec.faults,
                tier=spec.tier,
                obs_level=spec.obs_level,
                tenants=placement.tenants_on(d, spec.tenants),
                interference=spec.interference,
            )
        )
        drive_indices.append(d)
    return FleetPlan(
        spec=spec,
        placement=placement,
        jobs=tuple(jobs),
        drive_indices=tuple(drive_indices),
    )


def run_fleet(
    spec: FleetSpec,
    workers: Optional[int] = None,
    shard_size: int = 4,
    max_retries: int = 0,
    on_error: str = "raise",
    chaos: Optional[Any] = None,
    journal: Optional[Any] = None,
    progress: Optional[Any] = None,
) -> SuiteReport:
    """Run a fleet spec through the sharded runner and merge the report."""
    plan = build_fleet_plan(spec)
    runner = ExperimentRunner(
        workers=workers,
        max_retries=max_retries,
        on_error=on_error,
        chaos=chaos,
    )
    return runner.run_sharded(
        plan.jobs, shard_size=shard_size, journal=journal, progress=progress
    )
