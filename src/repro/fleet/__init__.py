"""Fleet-scale multi-tenant simulation.

Promotes the lifetime family model from a distribution sampler to a
simulated fleet: per-tenant workload profiles multiplexed onto shared
drives through a deterministic placement layer, executed by the sharded
runner mode, with tenant-level QoS, noisy-neighbor interference and
fleet-wide scrub budgeting on top.
"""

from repro.fleet.multiplex import (
    TenantColumns,
    combine_columns,
    synthesize_tenant_columns,
    volume_layout,
)
from repro.fleet.placement import (
    PLACEMENT_POLICIES,
    FleetPlacement,
    place_tenants,
)
from repro.fleet.qos import interference_report, qos_entry, tenant_qos_from_result
from repro.fleet.run import FleetPlan, FleetSpec, build_fleet_plan, run_fleet
from repro.fleet.scrub import FleetScrubPlan, allocate_idle_budget, plan_fleet_scrub
from repro.fleet.tenant import (
    DEFAULT_TENANT_PROFILES,
    TenantLoad,
    sample_tenants,
    tenant_from_trace,
)

__all__ = [
    "DEFAULT_TENANT_PROFILES",
    "PLACEMENT_POLICIES",
    "FleetPlacement",
    "FleetPlan",
    "FleetScrubPlan",
    "FleetSpec",
    "TenantColumns",
    "TenantLoad",
    "allocate_idle_budget",
    "build_fleet_plan",
    "combine_columns",
    "interference_report",
    "place_tenants",
    "plan_fleet_scrub",
    "qos_entry",
    "run_fleet",
    "sample_tenants",
    "synthesize_tenant_columns",
    "tenant_from_trace",
    "tenant_qos_from_result",
    "volume_layout",
]
