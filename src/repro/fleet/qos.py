"""Tenant-level QoS accounting on shared drives.

Two views of a tenant's experience:

* :func:`tenant_qos_from_result` slices the co-located simulation's
  response times by tenant and reports per-tenant tails (p95/p99/p999)
  on the :mod:`repro.core.latency` tail machinery;
* :func:`interference_report` quantifies the noisy-neighbor effect by
  re-simulating each tenant *alone* on the same drive and comparing its
  isolated tail to the co-located one. ``p99_inflation > 1`` means the
  tenant's p99 got worse because of its neighbors.

Inflation ratios follow the :func:`repro.core.latency.tail_inflation`
guards: NaN when either side is non-finite or the baseline is zero with
a nonzero numerator, and 1.0 when both sides are zero.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Mapping, Sequence

import numpy as np

from repro.core.latency import _tail_stats
from repro.disk.simulator import DiskSimulator
from repro.fleet.multiplex import TenantColumns, combine_columns
from repro.fleet.tenant import TenantLoad


def qos_entry(responses: np.ndarray) -> Dict[str, float]:
    """Tail summary of one tenant's response-time sample."""
    responses = np.asarray(responses, dtype=np.float64)
    mean, p99, p999, maximum = _tail_stats(responses)
    p95 = float(np.quantile(responses, 0.95)) if responses.size else float("nan")
    return {
        "n_requests": int(responses.size),
        "mean_response": mean,
        "p95_response": p95,
        "p99_response": p99,
        "p999_response": p999,
        "max_response": maximum,
    }


def tenant_qos_from_result(
    tenants: Sequence[TenantLoad],
    tenant_idx: np.ndarray,
    responses: np.ndarray,
) -> Dict[str, Dict[str, float]]:
    """Per-tenant QoS entries from a co-located simulation.

    ``tenant_idx[i]`` names the tenant (index into ``tenants``) that
    issued merged request ``i``; ``responses`` is the simulator's
    response-time array over the same merged order.
    """
    responses = np.asarray(responses, dtype=np.float64)
    out = {}
    for k, tenant in enumerate(tenants):
        out[tenant.tenant_id] = qos_entry(responses[tenant_idx == k])
    return out


def _inflation(colocated: float, isolated: float) -> float:
    if not (math.isfinite(colocated) and math.isfinite(isolated)):
        return float("nan")
    if isolated == 0.0:
        return 1.0 if colocated == 0.0 else float("nan")
    return colocated / isolated


def interference_report(
    job: Any,
    columns: Sequence[TenantColumns],
    colocated: Mapping[str, Mapping[str, float]],
) -> Dict[str, Dict[str, float]]:
    """Noisy-neighbor report: isolated vs co-located tails per tenant.

    Each tenant is replayed alone on a fresh simulator configured like
    ``job`` (same drive, scheduler, seed, queue depth, faults, tier),
    so the only difference from the co-located numbers is the absence
    of neighbors.
    """
    report = {}
    for k, column in enumerate(columns):
        trace, _ = combine_columns(
            columns, span=column.span, capacity_sectors=job.drive.capacity_sectors,
            subset=(k,),
        )
        simulator = DiskSimulator(
            job.drive,
            scheduler=job.scheduler,
            seed=job.seed,
            queue_depth=job.queue_depth,
            fast_path=job.fast_path,
            faults=job.faults,
            tier=job.tier,
        )
        result = simulator.run(trace)
        _, iso_p99, iso_p999, _ = _tail_stats(
            np.asarray(result.response_times, dtype=np.float64)
        )
        entry = colocated[column.tenant_id]
        report[column.tenant_id] = {
            "n_requests": int(entry["n_requests"]),
            "isolated_p99": iso_p99,
            "colocated_p99": float(entry["p99_response"]),
            "p99_inflation": _inflation(float(entry["p99_response"]), iso_p99),
            "isolated_p999": iso_p999,
            "colocated_p999": float(entry["p999_response"]),
            "p999_inflation": _inflation(float(entry["p999_response"]), iso_p999),
        }
    return report
