"""Fleet-level scrub scheduling under a global idle-time budget.

A fleet operator cannot scrub every drive flat-out: background I/O
competes with tenants, so the fleet grants a *global* budget of
background seconds and splits it across drives. The allocation is a
deterministic water-fill: every drive gets an equal share per round,
capped by its own idle time (a busy drive cannot absorb its share), and
leftover budget is redistributed to drives that still have idle
headroom. Per-drive execution then runs on the single-drive
:func:`repro.core.background.run_in_idle` machinery with its
``budget_seconds`` cap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

from repro.errors import FleetError


def allocate_idle_budget(
    idle_seconds: Mapping[str, float],
    budget_seconds: float,
) -> Dict[str, float]:
    """Water-fill ``budget_seconds`` across drives, capped by per-drive idle.

    Deterministic: drives are processed in sorted-key order and every
    round grants ``remaining / n_open`` to each drive still below its
    idle cap. The total allocated never exceeds the budget or the sum of
    idle times.
    """
    if budget_seconds < 0:
        raise FleetError(f"budget_seconds must be >= 0, got {budget_seconds!r}")
    caps = {}
    for name in sorted(idle_seconds):
        cap = float(idle_seconds[name])
        if cap < 0:
            raise FleetError(f"idle time for {name!r} must be >= 0, got {cap!r}")
        caps[name] = cap
    grants = {name: 0.0 for name in caps}
    remaining = float(budget_seconds)
    while remaining > 1e-12:
        open_drives = [n for n in grants if grants[n] < caps[n] - 1e-12]
        if not open_drives:
            break
        share = remaining / len(open_drives)
        progressed = False
        for name in open_drives:
            grant = min(share, caps[name] - grants[name])
            if grant > 0:
                grants[name] += grant
                remaining -= grant
                progressed = True
        if not progressed:
            break
    return grants


@dataclass(frozen=True)
class FleetScrubPlan:
    """Budget split across the fleet plus the work it buys."""

    budget_seconds: float
    work_seconds_per_drive: float
    allocations: Tuple[Tuple[str, float], ...]

    @property
    def total_allocated(self) -> float:
        return sum(seconds for _, seconds in self.allocations)

    @property
    def completion_fraction(self) -> float:
        """Fraction of the fleet-wide scrub workload the budget covers."""
        if not self.allocations or self.work_seconds_per_drive <= 0:
            return 0.0
        done = sum(
            min(seconds, self.work_seconds_per_drive)
            for _, seconds in self.allocations
        )
        return done / (self.work_seconds_per_drive * len(self.allocations))

    def as_dict(self) -> dict:
        return {
            "budget_seconds": self.budget_seconds,
            "work_seconds_per_drive": self.work_seconds_per_drive,
            "total_allocated": self.total_allocated,
            "completion_fraction": self.completion_fraction,
            "allocations": {name: seconds for name, seconds in self.allocations},
        }


def plan_fleet_scrub(
    results: Sequence,
    budget_seconds: float,
    work_seconds_per_drive: float,
) -> FleetScrubPlan:
    """Split a global scrub budget across a suite's drive results.

    ``results`` are :class:`~repro.core.runner.JobResult` rows; each
    drive's idle time is ``span - total_busy`` (clamped at zero) and its
    grant is additionally capped at ``work_seconds_per_drive`` — budget
    beyond the scrub workload is left unspent.
    """
    if work_seconds_per_drive <= 0:
        raise FleetError(
            f"work_seconds_per_drive must be > 0, got {work_seconds_per_drive!r}"
        )
    idle = {
        r.label: min(max(0.0, r.span - r.total_busy), work_seconds_per_drive)
        for r in results
    }
    grants = allocate_idle_budget(idle, budget_seconds)
    return FleetScrubPlan(
        budget_seconds=float(budget_seconds),
        work_seconds_per_drive=float(work_seconds_per_drive),
        allocations=tuple(sorted(grants.items())),
    )
