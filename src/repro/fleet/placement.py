"""Deterministic tenant-to-drive placement.

Placement is the fleet's sharding key: every tenant lands on exactly
one drive, and the assignment depends only on the tenant set, the drive
count and the policy name — never on process state, hash randomization
or worker count. That property is what lets the sharded runner promise
bit-identical fleet reports across worker counts.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.errors import FleetError
from repro.fleet.tenant import TenantLoad

PLACEMENT_POLICIES: Tuple[str, ...] = ("roundrobin", "hash", "leastload")


@dataclass(frozen=True)
class FleetPlacement:
    """Assignment of tenant indices to drives.

    ``assignments[d]`` is the tuple of tenant indices (into the original
    tenant sequence) placed on drive ``d``; drives may be empty.
    """

    n_drives: int
    policy: str
    assignments: Tuple[Tuple[int, ...], ...]

    def tenants_on(self, drive: int, tenants: Sequence[TenantLoad]) -> Tuple[TenantLoad, ...]:
        return tuple(tenants[i] for i in self.assignments[drive])

    def as_dict(self) -> dict:
        return {
            "n_drives": self.n_drives,
            "policy": self.policy,
            "assignments": [list(a) for a in self.assignments],
        }


def _stable_hash(tenant_id: str) -> int:
    return int.from_bytes(hashlib.sha256(tenant_id.encode("utf-8")).digest()[:8], "big")


def place_tenants(
    tenants: Sequence[TenantLoad],
    n_drives: int,
    policy: str = "roundrobin",
) -> FleetPlacement:
    """Place every tenant on exactly one drive.

    Policies:

    * ``roundrobin`` — tenant ``i`` on drive ``i % n_drives``;
    * ``hash`` — sha256 of the tenant id modulo ``n_drives`` (stable
      across processes, unlike Python's randomized ``hash``);
    * ``leastload`` — tenants sorted by descending profile rate (ties by
      index) assigned greedily to the currently least-loaded drive
      (ties by lowest drive index).
    """
    if n_drives < 1:
        raise FleetError(f"n_drives must be >= 1, got {n_drives!r}")
    if not tenants:
        raise FleetError("cannot place an empty tenant set")
    ids = [t.tenant_id for t in tenants]
    if len(set(ids)) != len(ids):
        raise FleetError("tenant ids must be unique within a fleet")
    if policy not in PLACEMENT_POLICIES:
        raise FleetError(
            f"unknown placement policy {policy!r}; expected one of {PLACEMENT_POLICIES}"
        )

    buckets: Tuple[list, ...] = tuple([] for _ in range(n_drives))
    if policy == "roundrobin":
        for i in range(len(tenants)):
            buckets[i % n_drives].append(i)
    elif policy == "hash":
        for i, tenant in enumerate(tenants):
            buckets[_stable_hash(tenant.tenant_id) % n_drives].append(i)
    else:  # leastload
        weights = [
            (t.profile.rate if t.profile is not None else 1.0) for t in tenants
        ]
        order = sorted(range(len(tenants)), key=lambda i: (-weights[i], i))
        loads = [0.0] * n_drives
        for i in order:
            drive = min(range(n_drives), key=lambda d: (loads[d], d))
            buckets[drive].append(i)
            loads[drive] += weights[i]
        for bucket in buckets:
            bucket.sort()
    return FleetPlacement(
        n_drives=n_drives,
        policy=policy,
        assignments=tuple(tuple(b) for b in buckets),
    )
