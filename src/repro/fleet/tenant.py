"""Per-tenant workload descriptions for the simulated fleet.

A :class:`TenantLoad` names one tenant (one cloud volume, in the
Alibaba block-storage framing) and carries exactly one workload source:
either a synthetic :class:`~repro.synth.workload.WorkloadProfile` or a
picklable trace source (anything with a ``.load()`` returning a
:class:`~repro.traces.RequestTrace`, e.g. the ingest layer's
``TraceSource``). Fleet jobs multiplex several tenants onto one shared
drive; see :mod:`repro.fleet.multiplex`.

Tenant populations are sampled with :func:`sample_tenants`, which draws
per-tenant intensities from the lifetime family model
(:meth:`~repro.synth.family.FamilyModel.intensity_multipliers`) so the
simulated fleet reproduces the paper's heavy-tailed load skew.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence, Tuple

import numpy as np

from repro.errors import FleetError
from repro.synth.calibrate import calibrate_profile
from repro.synth.family import FamilyModel
from repro.synth.profiles import get_profile
from repro.synth.workload import WorkloadProfile

DEFAULT_TENANT_PROFILES: Tuple[str, ...] = (
    "web",
    "email",
    "devel",
    "database",
    "fileserver",
)


@dataclass(frozen=True)
class TenantLoad:
    """One tenant's workload: an id plus exactly one workload source."""

    tenant_id: str
    profile: Optional[WorkloadProfile] = None
    trace: Optional[Any] = None

    def __post_init__(self) -> None:
        if not self.tenant_id:
            raise FleetError("tenant_id must be a non-empty string")
        if (self.profile is None) == (self.trace is None):
            raise FleetError(
                f"tenant {self.tenant_id!r} needs exactly one workload source "
                "(profile or trace)"
            )

    @property
    def workload_name(self) -> str:
        if self.profile is not None:
            return self.profile.name or "profile"
        return getattr(self.trace, "label", None) or "trace"


def sample_tenants(
    n_tenants: int,
    seed: int = 0,
    profiles: Sequence[str] = DEFAULT_TENANT_PROFILES,
    family: Optional[FamilyModel] = None,
    min_rate: float = 0.5,
    max_rate: float = 2000.0,
) -> Tuple[TenantLoad, ...]:
    """Sample a deterministic tenant population with family-model skew.

    Named profiles are assigned round-robin and each tenant's request
    rate is the profile's base rate scaled by a family-model intensity
    multiplier, clipped to ``[min_rate, max_rate]`` req/s. Deterministic
    in ``seed``; tenant ids are ``t000`` upward.
    """
    if n_tenants <= 0:
        raise FleetError(f"n_tenants must be > 0, got {n_tenants!r}")
    if not profiles:
        raise FleetError("profiles must name at least one workload profile")
    if not 0 < min_rate <= max_rate:
        raise FleetError(
            f"need 0 < min_rate <= max_rate, got {min_rate!r} and {max_rate!r}"
        )
    model = family if family is not None else FamilyModel()
    multipliers = model.intensity_multipliers(n_tenants, seed=seed)
    tenants = []
    for i in range(n_tenants):
        base = get_profile(profiles[i % len(profiles)])
        rate = float(np.clip(base.rate * multipliers[i], min_rate, max_rate))
        tenants.append(TenantLoad(f"t{i:03d}", profile=base.with_rate(rate)))
    return tuple(tenants)


def tenant_from_trace(trace: Any, tenant_id: str, base_scale: float = 0.01) -> TenantLoad:
    """Build a tenant whose profile is calibrated against a real trace.

    ``trace`` is an in-memory :class:`~repro.traces.RequestTrace` (e.g.
    from the ingest layer, possibly with corrupt rows quarantined); the
    PR 7 calibration loop fits a synthetic profile to it so the tenant
    can be re-synthesized at any span and seed.
    """
    profile = calibrate_profile(trace, name=tenant_id, base_scale=base_scale)
    return TenantLoad(tenant_id, profile=profile)
