"""A host page-cache model: application traffic in, disk traffic out.

The model captures the three behaviors that reshape workloads between
the application and the disk:

* **read absorption** — reads of cached pages never reach the disk, so
  the disk-level read share drops far below the application-level one;
* **write buffering** — writes dirty pages in memory and complete
  immediately; the disk sees them later;
* **periodic flushing** — dirty pages are written back in batches every
  ``flush_interval`` seconds (the pdflush/writeback daemon), which is
  where the disk-level *write bursts* come from.

Eviction is LRU; evicting a dirty page forces an immediate writeback.
Contiguous pages in one flush or miss are coalesced into single disk
requests, mirroring request merging in the block layer.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import SimulationError
from repro.traces.millisecond import RequestTrace


@dataclass(frozen=True)
class PageCacheStats:
    """Accounting of one filtering pass.

    Attributes
    ----------
    app_requests, disk_requests:
        Request counts on each side of the cache.
    read_hit_ratio:
        Fraction of application-read *pages* served from memory.
    app_write_fraction, disk_write_fraction:
        Write share of requests on each side — the paper-relevant shift.
    flush_batches:
        Number of periodic flush episodes that wrote anything.
    evicted_dirty_pages:
        Dirty pages written back due to capacity pressure.
    """

    app_requests: int
    disk_requests: int
    read_hit_ratio: float
    app_write_fraction: float
    disk_write_fraction: float
    flush_batches: int
    evicted_dirty_pages: int


class PageCache:
    """An LRU page cache with write-back and periodic flushing.

    Parameters
    ----------
    capacity_pages:
        Cache size in pages.
    page_sectors:
        Page size in sectors (8 = 4 KiB pages).
    flush_interval:
        Seconds between dirty-page writeback sweeps.
    final_sync:
        Whether to flush all remaining dirty pages at the end of the
        trace (like unmounting); keeps byte accounting closed.
    """

    def __init__(
        self,
        capacity_pages: int = 65_536,
        page_sectors: int = 8,
        flush_interval: float = 30.0,
        final_sync: bool = True,
    ) -> None:
        if capacity_pages <= 0:
            raise SimulationError(f"capacity_pages must be > 0, got {capacity_pages!r}")
        if page_sectors <= 0:
            raise SimulationError(f"page_sectors must be > 0, got {page_sectors!r}")
        if flush_interval <= 0:
            raise SimulationError(
                f"flush_interval must be > 0, got {flush_interval!r}"
            )
        self.capacity_pages = int(capacity_pages)
        self.page_sectors = int(page_sectors)
        self.flush_interval = float(flush_interval)
        self.final_sync = bool(final_sync)

    # ------------------------------------------------------------------

    def _pages_of(self, lba: int, nsectors: int) -> range:
        first = lba // self.page_sectors
        last = (lba + nsectors - 1) // self.page_sectors
        return range(first, last + 1)

    @staticmethod
    def _coalesce(pages: List[int]) -> List[Tuple[int, int]]:
        """Group sorted page ids into (first_page, n_pages) runs."""
        runs: List[Tuple[int, int]] = []
        for page in sorted(pages):
            if runs and page == runs[-1][0] + runs[-1][1]:
                runs[-1] = (runs[-1][0], runs[-1][1] + 1)
            else:
                runs.append((page, 1))
        return runs

    def filter_trace(self, app_trace: RequestTrace) -> Tuple[RequestTrace, PageCacheStats]:
        """Push an application-level trace through the cache.

        Returns the disk-level trace (same clock and span) plus the
        filtering statistics. Deterministic: the cache starts cold.
        """
        cache: "OrderedDict[int, bool]" = OrderedDict()  # page -> dirty
        out_times: List[float] = []
        out_lbas: List[int] = []
        out_nsectors: List[int] = []
        out_write: List[bool] = []

        read_pages = 0
        read_hits = 0
        flush_batches = 0
        evicted_dirty = 0
        next_flush = self.flush_interval

        def emit(time: float, first_page: int, n_pages: int, is_write: bool) -> None:
            out_times.append(time)
            out_lbas.append(first_page * self.page_sectors)
            out_nsectors.append(n_pages * self.page_sectors)
            out_write.append(is_write)

        def flush_dirty(time: float) -> None:
            nonlocal flush_batches
            dirty = [page for page, flag in cache.items() if flag]
            if not dirty:
                return
            flush_batches += 1
            for first, count in self._coalesce(dirty):
                emit(time, first, count, True)
            for page in dirty:
                cache[page] = False

        def insert(page: int, dirty: bool, time: float) -> None:
            nonlocal evicted_dirty
            if page in cache:
                cache[page] = cache[page] or dirty
                cache.move_to_end(page)
                return
            while len(cache) >= self.capacity_pages:
                victim, was_dirty = cache.popitem(last=False)
                if was_dirty:
                    evicted_dirty += 1
                    emit(time, victim, 1, True)
            cache[page] = dirty

        for i in range(len(app_trace)):
            time = float(app_trace.times[i])
            while time >= next_flush:
                flush_dirty(next_flush)
                next_flush += self.flush_interval

            pages = self._pages_of(int(app_trace.lbas[i]), int(app_trace.nsectors[i]))
            if app_trace.is_write[i]:
                for page in pages:
                    insert(page, dirty=True, time=time)
            else:
                missing = []
                for page in pages:
                    read_pages += 1
                    if page in cache:
                        read_hits += 1
                        cache.move_to_end(page)
                    else:
                        missing.append(page)
                for first, count in self._coalesce(missing):
                    emit(time, first, count, False)
                for page in missing:
                    insert(page, dirty=False, time=time)

        # Boundaries elapse even when no request arrives to witness them.
        while next_flush <= app_trace.span:
            flush_dirty(next_flush)
            next_flush += self.flush_interval
        if self.final_sync:
            flush_dirty(app_trace.span)

        disk_trace = RequestTrace(
            times=out_times, lbas=out_lbas, nsectors=out_nsectors,
            is_write=out_write, span=app_trace.span,
            label=f"{app_trace.label}@disk",
        )
        n_app = len(app_trace)
        stats = PageCacheStats(
            app_requests=n_app,
            disk_requests=len(disk_trace),
            read_hit_ratio=read_hits / read_pages if read_pages else float("nan"),
            app_write_fraction=(
                float(app_trace.is_write.mean()) if n_app else float("nan")
            ),
            disk_write_fraction=(
                float(disk_trace.is_write.mean()) if len(disk_trace) else float("nan")
            ),
            flush_batches=flush_batches,
            evicted_dirty_pages=evicted_dirty,
        )
        return disk_trace, stats
