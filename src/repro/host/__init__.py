"""Host-side substrate: what stands between applications and the disk.

The paper's traces are *disk-level*: they show the traffic left over
after the host's caches have absorbed what they can. That filtering is
why disk-level mixes lean to writes (reads hit the page cache) and why
writes arrive in periodic bursts (dirty-page flushing). This subpackage
models that layer, so application-level workloads can be pushed through
a host cache and compared against the disk-level profiles — closing the
explanatory loop.
"""

from repro.host.pagecache import PageCache, PageCacheStats

__all__ = ["PageCache", "PageCacheStats"]
