"""Unit conventions and conversion helpers used across the library.

Conventions
-----------
* **Time** is measured in *seconds* as ``float`` everywhere in the public
  API. Millisecond traces therefore carry sub-millisecond resolution
  naturally; hour traces index time by integer hour numbers.
* **Space** is measured in 512-byte *sectors* for LBAs and request lengths
  (the unit disk firmware itself uses) and in *bytes* for throughput
  figures reported to humans.
* **Rates** are requests/second or bytes/second.

The helpers here exist so magnitude conversions are written once and read
everywhere (``ms(4.2)`` instead of ``4.2e-3`` scattered through code).
"""

from __future__ import annotations

SECTOR_BYTES = 512
"""Size of one logical block (sector) in bytes."""

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

MS_PER_SECOND = 1000.0
US_PER_SECOND = 1_000_000.0
SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 24 * SECONDS_PER_HOUR
HOURS_PER_DAY = 24
HOURS_PER_WEEK = 7 * HOURS_PER_DAY


def ms(value: float) -> float:
    """Convert milliseconds to seconds: ``ms(8.3) == 0.0083``."""
    return value / MS_PER_SECOND


def us(value: float) -> float:
    """Convert microseconds to seconds."""
    return value / US_PER_SECOND


def minutes(value: float) -> float:
    """Convert minutes to seconds."""
    return value * SECONDS_PER_MINUTE


def hours(value: float) -> float:
    """Convert hours to seconds."""
    return value * SECONDS_PER_HOUR


def days(value: float) -> float:
    """Convert days to seconds."""
    return value * SECONDS_PER_DAY


def to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds (for display)."""
    return seconds * MS_PER_SECOND


def sectors_to_bytes(sectors: int) -> int:
    """Convert a sector count to bytes."""
    return sectors * SECTOR_BYTES


def bytes_to_sectors(nbytes: int) -> int:
    """Convert bytes to whole sectors, rounding up to cover ``nbytes``."""
    return -(-nbytes // SECTOR_BYTES)


def format_bytes(nbytes: float) -> str:
    """Render a byte count with a binary-prefix unit, e.g. ``'3.2 MiB'``.

    Values below 1 KiB are shown as integer bytes. The function accepts
    floats because throughput aggregates are naturally fractional.
    """
    if nbytes < 0:
        return "-" + format_bytes(-nbytes)
    for unit, scale in (("GiB", GIB), ("MiB", MIB), ("KiB", KIB)):
        if nbytes >= scale:
            return f"{nbytes / scale:.2f} {unit}"
    return f"{nbytes:.0f} B"


def format_duration(seconds: float) -> str:
    """Render a duration with an adaptive unit: us, ms, s, min, h or d."""
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < 1e-3:
        return f"{seconds * US_PER_SECOND:.1f} us"
    if seconds < 1.0:
        return f"{seconds * MS_PER_SECOND:.2f} ms"
    if seconds < SECONDS_PER_MINUTE:
        return f"{seconds:.2f} s"
    if seconds < SECONDS_PER_HOUR:
        return f"{seconds / SECONDS_PER_MINUTE:.1f} min"
    if seconds < SECONDS_PER_DAY:
        return f"{seconds / SECONDS_PER_HOUR:.2f} h"
    return f"{seconds / SECONDS_PER_DAY:.2f} d"
