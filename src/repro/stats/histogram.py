"""Histograms with linear or logarithmic binning.

Idle-interval and request-size distributions span five or more orders of
magnitude, so logarithmic bins are the default tool; :func:`log_bin_edges`
builds them and :class:`Histogram` wraps numpy's counting with density and
mass views.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import StatsError


def log_bin_edges(lo: float, hi: float, bins_per_decade: int = 10) -> np.ndarray:
    """Logarithmically spaced bin edges covering ``[lo, hi]``.

    ``lo`` must be positive; the returned edges start at ``lo`` and end
    at or just past ``hi`` with ``bins_per_decade`` bins per factor of 10.
    """
    if lo <= 0:
        raise StatsError(f"log bins need lo > 0, got {lo!r}")
    if hi <= lo:
        raise StatsError(f"need hi > lo, got lo={lo!r}, hi={hi!r}")
    if bins_per_decade <= 0:
        raise StatsError(f"bins_per_decade must be > 0, got {bins_per_decade!r}")
    decades = np.log10(hi / lo)
    nbins = max(1, int(np.ceil(decades * bins_per_decade)))
    return lo * np.logspace(0, decades, nbins + 1, base=10.0)


class Histogram:
    """Counts of a sample over explicit bin edges.

    Values outside the edges are counted in :attr:`underflow` and
    :attr:`overflow` instead of being silently dropped, so totals always
    reconcile with the input sample size.
    """

    def __init__(self, sample: Sequence[float], edges: Sequence[float]) -> None:
        values = np.asarray(sample, dtype=np.float64)
        values = values[~np.isnan(values)]
        self._edges = np.asarray(edges, dtype=np.float64)
        if self._edges.ndim != 1 or self._edges.size < 2:
            raise StatsError("need at least two bin edges")
        if np.any(np.diff(self._edges) <= 0):
            raise StatsError("bin edges must be strictly increasing")
        self.underflow = int(np.sum(values < self._edges[0]))
        self.overflow = int(np.sum(values >= self._edges[-1]))
        inside = values[(values >= self._edges[0]) & (values < self._edges[-1])]
        self._counts, _ = np.histogram(inside, bins=self._edges)
        self._n = int(values.size)

    @property
    def edges(self) -> np.ndarray:
        """Bin edges (length ``nbins + 1``)."""
        return self._edges

    @property
    def counts(self) -> np.ndarray:
        """Raw per-bin counts."""
        return self._counts

    @property
    def n(self) -> int:
        """Total sample size (inside + underflow + overflow)."""
        return self._n

    @property
    def centers(self) -> np.ndarray:
        """Geometric bin centers (appropriate for log bins)."""
        return np.sqrt(self._edges[:-1] * np.maximum(self._edges[1:], 1e-300))

    def mass(self) -> np.ndarray:
        """Per-bin probability mass (sums to the in-range fraction)."""
        if self._n == 0:
            return np.zeros_like(self._counts, dtype=np.float64)
        return self._counts / self._n

    def density(self) -> np.ndarray:
        """Per-bin probability density (mass / bin width)."""
        widths = np.diff(self._edges)
        return self.mass() / widths

    def mode_bin(self) -> int:
        """Index of the most populated bin."""
        return int(np.argmax(self._counts))
