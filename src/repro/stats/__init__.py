"""Statistics substrate: the estimators the characterization is built on.

Everything here is implemented from first principles on numpy so the
analysis layer has no dependency beyond it: empirical distributions,
moments (batch and streaming), autocorrelation, the index of dispersion
for counts, Hurst-parameter estimators, heavy-tail diagnostics,
maximum-likelihood distribution fits, and inequality measures (Lorenz
curve, Gini coefficient) for the cross-family variability analyses.
"""

from repro.stats.ecdf import Ecdf
from repro.stats.histogram import Histogram, log_bin_edges
from repro.stats.moments import (
    StreamingMoments,
    coefficient_of_variation,
    describe,
    SampleDescription,
)
from repro.stats.autocorr import autocorrelation, integrated_autocorrelation_time
from repro.stats.dispersion import index_of_dispersion, idc_curve
from repro.stats.hurst import (
    hurst_aggregate_variance,
    hurst_rescaled_range,
    variance_time_curve,
)
from repro.stats.tail import hill_estimator, tail_heaviness_ratio
from repro.stats.fitting import (
    ExponentialFit,
    LognormalFit,
    ParetoFit,
    fit_exponential,
    fit_lognormal,
    fit_pareto,
    best_fit,
)
from repro.stats.inequality import gini_coefficient, lorenz_curve, top_share
from repro.stats.queueing import Mg1Prediction, burstiness_penalty, mg1_predict, mg1_predict_from_samples, mg1_vacation_penalty, mg1_with_vacations
from repro.stats.periodicity import PeriodEstimate, dominant_period, remove_seasonal, seasonal_strength
from repro.stats.bootstrap import BootstrapInterval, block_bootstrap_ci, bootstrap_ci
from repro.stats.crosscorr import cross_correlation, peak_lag

__all__ = [
    "Ecdf",
    "Histogram",
    "log_bin_edges",
    "StreamingMoments",
    "coefficient_of_variation",
    "describe",
    "SampleDescription",
    "autocorrelation",
    "integrated_autocorrelation_time",
    "index_of_dispersion",
    "idc_curve",
    "hurst_aggregate_variance",
    "hurst_rescaled_range",
    "variance_time_curve",
    "hill_estimator",
    "tail_heaviness_ratio",
    "ExponentialFit",
    "LognormalFit",
    "ParetoFit",
    "fit_exponential",
    "fit_lognormal",
    "fit_pareto",
    "best_fit",
    "gini_coefficient",
    "lorenz_curve",
    "top_share",
    "Mg1Prediction",
    "mg1_predict",
    "mg1_predict_from_samples",
    "burstiness_penalty",
    "mg1_vacation_penalty",
    "mg1_with_vacations",
    "PeriodEstimate",
    "dominant_period",
    "seasonal_strength",
    "remove_seasonal",
    "BootstrapInterval",
    "bootstrap_ci",
    "block_bootstrap_ci",
    "cross_correlation",
    "peak_lag",
]
