"""Sample moments: batch description and streaming (Welford) accumulation.

:class:`StreamingMoments` exists because the simulator can emit millions
of per-request timings; analyses that only need moments should not have to
buffer them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import StatsError


@dataclass(frozen=True)
class SampleDescription:
    """The headline statistics of a one-dimensional sample."""

    n: int
    mean: float
    std: float
    cv: float
    minimum: float
    p25: float
    median: float
    p75: float
    p95: float
    p99: float
    maximum: float


def describe(sample: Sequence[float]) -> SampleDescription:
    """Compute the standard description of a sample (NaNs dropped)."""
    values = np.asarray(sample, dtype=np.float64)
    values = values[~np.isnan(values)]
    if values.size == 0:
        raise StatsError("cannot describe an empty sample")
    mean = float(values.mean())
    std = float(values.std(ddof=1)) if values.size > 1 else 0.0
    q = np.quantile(values, [0.25, 0.5, 0.75, 0.95, 0.99])
    return SampleDescription(
        n=int(values.size),
        mean=mean,
        std=std,
        cv=std / mean if mean != 0 else float("nan"),
        minimum=float(values.min()),
        p25=float(q[0]),
        median=float(q[1]),
        p75=float(q[2]),
        p95=float(q[3]),
        p99=float(q[4]),
        maximum=float(values.max()),
    )


def coefficient_of_variation(sample: Sequence[float]) -> float:
    """Sample standard deviation divided by the mean.

    CV = 1 characterizes the exponential distribution; disk-level
    interarrival times show CV well above 1 (burstiness). NaN when the
    mean is 0.
    """
    values = np.asarray(sample, dtype=np.float64)
    values = values[~np.isnan(values)]
    if values.size < 2:
        raise StatsError("coefficient of variation needs at least 2 values")
    mean = values.mean()
    if mean == 0:
        return float("nan")
    return float(values.std(ddof=1) / mean)


class StreamingMoments:
    """Welford's online algorithm for count, mean and variance.

    Numerically stable for long streams; supports merging two
    accumulators (parallel analysis shards) via :meth:`merge`.
    """

    def __init__(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def add(self, value: float) -> None:
        """Fold one observation into the running moments."""
        self._n += 1
        delta = value - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def add_many(self, values: Sequence[float]) -> None:
        """Fold a batch of observations in one vectorized pass.

        Computes the batch's moments with numpy reductions and merges
        them in (Chan's parallel update, as in :meth:`merge`), so
        folding a chunk of N values costs a few array passes instead of
        N Python-level :meth:`add` calls. Numerically equivalent to the
        scalar loop up to floating-point roundoff.
        """
        batch_values = np.asarray(values, dtype=np.float64)
        if batch_values.size == 0:
            return
        batch = StreamingMoments()
        batch._n = int(batch_values.size)
        batch._mean = float(batch_values.mean())
        centered = batch_values - batch._mean
        batch._m2 = float(np.dot(centered, centered))
        batch._min = float(batch_values.min())
        batch._max = float(batch_values.max())
        merged = self.merge(batch)
        self._n = merged._n
        self._mean = merged._mean
        self._m2 = merged._m2
        self._min = merged._min
        self._max = merged._max

    def merge(self, other: "StreamingMoments") -> "StreamingMoments":
        """A new accumulator equivalent to having seen both streams."""
        merged = StreamingMoments()
        n = self._n + other._n
        if n == 0:
            return merged
        delta = other._mean - self._mean
        merged._n = n
        merged._mean = self._mean + delta * other._n / n
        merged._m2 = (
            self._m2 + other._m2 + delta * delta * self._n * other._n / n
        )
        merged._min = min(self._min, other._min)
        merged._max = max(self._max, other._max)
        return merged

    def state_dict(self) -> dict:
        """The accumulator's full state as a JSON-friendly dict.

        Together with :meth:`from_state_dict` this lets moment
        accumulators travel across process boundaries (runner workers)
        and serialization formats without losing merge-ability.
        """
        return {
            "n": self._n,
            "mean": self._mean,
            "m2": self._m2,
            "min": self._min if self._n else None,
            "max": self._max if self._n else None,
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "StreamingMoments":
        """Rebuild an accumulator from :meth:`state_dict` output."""
        moments = cls()
        moments._n = int(state["n"])
        moments._mean = float(state["mean"])
        moments._m2 = float(state["m2"])
        moments._min = float("inf") if state["min"] is None else float(state["min"])
        moments._max = float("-inf") if state["max"] is None else float(state["max"])
        return moments

    @property
    def n(self) -> int:
        """Number of observations seen."""
        return self._n

    @property
    def mean(self) -> float:
        """Running mean (NaN before the first observation)."""
        return self._mean if self._n else float("nan")

    @property
    def variance(self) -> float:
        """Unbiased sample variance (NaN below 2 observations)."""
        if self._n < 2:
            return float("nan")
        return self._m2 / (self._n - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        var = self.variance
        return float(np.sqrt(var)) if var == var else float("nan")

    @property
    def cv(self) -> float:
        """Coefficient of variation of the stream so far."""
        if self._n < 2 or self.mean == 0:
            return float("nan")
        return self.std / self.mean

    @property
    def minimum(self) -> float:
        """Smallest observation (NaN before the first)."""
        return self._min if self._n else float("nan")

    @property
    def maximum(self) -> float:
        """Largest observation (NaN before the first)."""
        return self._max if self._n else float("nan")
