"""Empirical cumulative distribution functions.

Almost every figure in the paper is a CDF (of idle-interval lengths, of
busy periods, of per-drive throughput, ...), so :class:`Ecdf` is the
figure-series type of the library: it evaluates, inverts (quantiles), and
renders itself to the (x, y) pairs a plotting tool or a textual "figure"
needs.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.errors import StatsError


class Ecdf:
    """The empirical CDF of a one-dimensional sample.

    NaN values are dropped at construction (family-level columns use NaN
    for undefined entries such as the write fraction of an untouched
    drive); an all-NaN or empty sample is rejected.
    """

    def __init__(self, sample: Sequence[float]) -> None:
        values = np.asarray(sample, dtype=np.float64)
        values = values[~np.isnan(values)]
        if values.size == 0:
            raise StatsError("cannot build an ECDF from an empty sample")
        self._sorted = np.sort(values)
        self._sorted.setflags(write=False)

    @property
    def n(self) -> int:
        """Sample size after NaN removal."""
        return int(self._sorted.size)

    @property
    def values(self) -> np.ndarray:
        """The sorted sample (read-only)."""
        return self._sorted

    def __call__(self, x: float) -> float:
        """P(X <= x), evaluated from the sample."""
        return float(np.searchsorted(self._sorted, x, side="right")) / self.n

    def evaluate(self, xs: Sequence[float]) -> np.ndarray:
        """Vectorized :meth:`__call__`."""
        xs = np.asarray(xs, dtype=np.float64)
        return np.searchsorted(self._sorted, xs, side="right") / self.n

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (0 <= q <= 1) using the inverse-CDF rule:
        the smallest sample value v with ECDF(v) >= q."""
        if not 0.0 <= q <= 1.0:
            raise StatsError(f"quantile must be in [0, 1], got {q!r}")
        if q == 0.0:
            return float(self._sorted[0])
        index = int(np.ceil(q * self.n)) - 1
        return float(self._sorted[index])

    def quantiles(self, qs: Sequence[float]) -> np.ndarray:
        """Vectorized :meth:`quantile`."""
        return np.array([self.quantile(float(q)) for q in qs])

    @property
    def median(self) -> float:
        """The 0.5 quantile."""
        return self.quantile(0.5)

    @property
    def mean(self) -> float:
        """Sample mean."""
        return float(self._sorted.mean())

    def survival(self, x: float) -> float:
        """P(X > x) — the complementary CDF, used for tail plots."""
        return 1.0 - self(x)

    def steps(self) -> Tuple[np.ndarray, np.ndarray]:
        """The (x, y) step coordinates of the ECDF, ready to plot: x is
        the sorted sample, y climbs 1/n per point to 1.0."""
        y = np.arange(1, self.n + 1, dtype=np.float64) / self.n
        return self._sorted.copy(), y

    def sample_points(self, k: int = 50, log_x: bool = False) -> Tuple[np.ndarray, np.ndarray]:
        """``k`` (x, ECDF(x)) pairs spanning the sample range, linearly or
        logarithmically spaced — the series reported by the benchmarks."""
        if k < 2:
            raise StatsError(f"need at least 2 points, got {k!r}")
        lo, hi = float(self._sorted[0]), float(self._sorted[-1])
        if log_x:
            if lo <= 0:
                positive = self._sorted[self._sorted > 0]
                if positive.size == 0:
                    raise StatsError("log_x requires positive sample values")
                lo = float(positive[0])
            xs = np.logspace(np.log10(lo), np.log10(max(hi, lo)), k)
        else:
            xs = np.linspace(lo, hi, k)
        return xs, self.evaluate(xs)
