"""Cross-correlation between two count series.

Used to study how read and write traffic couple over time: at lag 0 a
positive value means they surge together (shared cause: the application),
while a peak at a positive lag means one stream *follows* the other
(e.g. write-back destage trailing foreground writes).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.errors import StatsError


def cross_correlation(
    a: Sequence[float], b: Sequence[float], max_lag: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample cross-correlation of two equal-length series.

    Returns ``(lags, ccf)`` for lags ``-max_lag .. +max_lag``; at lag k,
    the value correlates ``a[t]`` with ``b[t + k]``, so a peak at
    positive k means *b lags a*. The biased estimator (normalizing by n
    and the full-series standard deviations) is used, keeping values in
    [-1, 1]. A constant series yields NaN at every lag.
    """
    x = np.asarray(a, dtype=np.float64)
    y = np.asarray(b, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise StatsError(
            f"series shapes differ or not 1-D: {x.shape} vs {y.shape}"
        )
    n = x.size
    if n < 2:
        raise StatsError("cross-correlation needs at least 2 observations")
    if max_lag < 0:
        raise StatsError(f"max_lag must be >= 0, got {max_lag!r}")
    max_lag = min(max_lag, n - 1)
    xc = x - x.mean()
    yc = y - y.mean()
    denom = n * x.std(ddof=0) * y.std(ddof=0)
    lags = np.arange(-max_lag, max_lag + 1)
    ccf = np.empty(lags.size)
    if denom == 0:
        ccf[:] = np.nan
        return lags, ccf
    for i, k in enumerate(lags):
        if k >= 0:
            ccf[i] = float(np.dot(xc[: n - k], yc[k:])) / denom
        else:
            ccf[i] = float(np.dot(xc[-k:], yc[: n + k])) / denom
    return lags, ccf


def peak_lag(a: Sequence[float], b: Sequence[float], max_lag: int) -> Tuple[int, float]:
    """The lag with the strongest (absolute) cross-correlation.

    Returns ``(lag, value)``; positive lag means ``b`` follows ``a``.
    """
    lags, ccf = cross_correlation(a, b, max_lag)
    finite = np.isfinite(ccf)
    if not finite.any():
        raise StatsError("cross-correlation is undefined (constant series)")
    masked = np.where(finite, np.abs(ccf), -np.inf)
    best = int(np.argmax(masked))
    return int(lags[best]), float(ccf[best])
