"""Analytic queueing baselines: M/G/1 formulas.

A disk served FCFS is, under Poisson arrivals, an M/G/1 queue — the
classical sanity check for any disk simulator. The Pollaczek-Khinchine
formula predicts mean waiting time from just three numbers (arrival
rate, mean and variance of service time), so the simulator can be
validated end-to-end against theory, and measured workloads can be
compared against their memoryless counterfactual (bursty arrivals wait
*longer* than P-K predicts — another face of the paper's burstiness
finding).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import StatsError


@dataclass(frozen=True)
class Mg1Prediction:
    """Analytic M/G/1 quantities for given arrival/service parameters.

    Attributes
    ----------
    utilization:
        Offered load ``rho = lambda * E[S]``.
    mean_wait:
        Mean time in queue (Pollaczek-Khinchine).
    mean_response:
        Mean time in system (wait + service).
    mean_queue_length:
        Mean number waiting (Little's law on the wait).
    """

    utilization: float
    mean_wait: float
    mean_response: float
    mean_queue_length: float


def mg1_predict(
    arrival_rate: float, service_mean: float, service_scv: float
) -> Mg1Prediction:
    """Pollaczek-Khinchine prediction for an M/G/1 queue.

    Parameters
    ----------
    arrival_rate:
        Poisson arrival rate ``lambda`` (requests/second).
    service_mean:
        Mean service time ``E[S]`` in seconds.
    service_scv:
        Squared coefficient of variation of service time,
        ``Var[S] / E[S]^2`` (1 for exponential service, 0 for constant).

    Raises
    ------
    StatsError
        For non-positive inputs or an unstable queue (``rho >= 1``).
    """
    if arrival_rate <= 0:
        raise StatsError(f"arrival_rate must be > 0, got {arrival_rate!r}")
    if service_mean <= 0:
        raise StatsError(f"service_mean must be > 0, got {service_mean!r}")
    if service_scv < 0:
        raise StatsError(f"service_scv must be >= 0, got {service_scv!r}")
    rho = arrival_rate * service_mean
    if rho >= 1.0:
        raise StatsError(
            f"queue unstable: offered load rho = {rho:.3f} >= 1"
        )
    mean_wait = rho * service_mean * (1.0 + service_scv) / (2.0 * (1.0 - rho))
    return Mg1Prediction(
        utilization=rho,
        mean_wait=mean_wait,
        mean_response=mean_wait + service_mean,
        mean_queue_length=arrival_rate * mean_wait,
    )


def mg1_predict_from_samples(
    arrival_rate: float, service_samples
) -> Mg1Prediction:
    """P-K prediction with the service moments estimated from a sample
    of observed service times (e.g. a simulation's output)."""
    samples = np.asarray(service_samples, dtype=np.float64)
    samples = samples[~np.isnan(samples)]
    if samples.size < 2:
        raise StatsError("need at least 2 service-time samples")
    mean = float(samples.mean())
    if mean <= 0:
        raise StatsError("service samples must have a positive mean")
    scv = float(samples.var(ddof=1) / mean ** 2)
    return mg1_predict(arrival_rate, mean, scv)


def mg1_vacation_penalty(vacation_mean: float, vacation_scv: float) -> float:
    """Extra mean wait imposed on foreground requests by server vacations.

    In an M/G/1 queue whose server takes vacations whenever it idles
    (the model of a disk running background chunks in idle time), the
    decomposition result adds ``E[V^2] / (2 E[V])`` to every customer's
    mean wait, where V is the vacation length. Expressed through the
    squared coefficient of variation: ``E[V] * (1 + scv) / 2``.

    Small, fixed-size background chunks therefore bound the foreground
    penalty at about half a chunk — the analytic justification for the
    chunking policy in :mod:`repro.core.background`.
    """
    if vacation_mean <= 0:
        raise StatsError(f"vacation_mean must be > 0, got {vacation_mean!r}")
    if vacation_scv < 0:
        raise StatsError(f"vacation_scv must be >= 0, got {vacation_scv!r}")
    return vacation_mean * (1.0 + vacation_scv) / 2.0


def mg1_with_vacations(
    arrival_rate: float,
    service_mean: float,
    service_scv: float,
    vacation_mean: float,
    vacation_scv: float = 0.0,
) -> Mg1Prediction:
    """P-K prediction plus the vacation decomposition term.

    Deterministic vacations (``vacation_scv = 0``) model fixed-size
    background chunks.
    """
    base = mg1_predict(arrival_rate, service_mean, service_scv)
    extra = mg1_vacation_penalty(vacation_mean, vacation_scv)
    mean_wait = base.mean_wait + extra
    return Mg1Prediction(
        utilization=base.utilization,
        mean_wait=mean_wait,
        mean_response=mean_wait + service_mean,
        mean_queue_length=arrival_rate * mean_wait,
    )


def burstiness_penalty(
    measured_mean_wait: float, prediction: Mg1Prediction
) -> float:
    """Ratio of a measured mean wait to the memoryless (P-K) prediction.

    ≈ 1 for genuinely Poisson arrivals; substantially above 1 when
    arrivals are bursty — queueing delay concentrates inside bursts, so
    the same offered load hurts more. NaN when the prediction is 0
    (degenerate no-wait regime).
    """
    if measured_mean_wait < 0:
        raise StatsError(
            f"measured_mean_wait must be >= 0, got {measured_mean_wait!r}"
        )
    if prediction.mean_wait <= 0:
        return float("nan")
    return measured_mean_wait / prediction.mean_wait
