"""Heavy-tail diagnostics for idle-interval and per-drive distributions.

"Long stretches of idleness" means, quantitatively, that the upper tail
of the idle-interval distribution is heavy: a small number of very long
intervals carry most of the idle time. The Hill estimator measures the
tail index; :func:`tail_heaviness_ratio` gives the analyst-friendly
"what share of the total is in the top q of intervals" view.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import StatsError


def hill_estimator(sample: Sequence[float], k: int) -> float:
    """Hill's estimator of the tail index ``alpha`` from the ``k``
    largest order statistics.

    Smaller ``alpha`` means a heavier tail; ``alpha < 2`` implies infinite
    variance (strongly heavy-tailed), ``alpha <= 1`` infinite mean. The
    estimator requires the top-``k + 1`` values to be positive.
    """
    values = np.asarray(sample, dtype=np.float64)
    values = values[~np.isnan(values)]
    if k < 1:
        raise StatsError(f"k must be >= 1, got {k!r}")
    if values.size <= k:
        raise StatsError(
            f"sample of {values.size} too small for k={k} (need > k values)"
        )
    top = np.sort(values)[-(k + 1):]
    if top[0] <= 0:
        raise StatsError("Hill estimator requires positive order statistics")
    logs = np.log(top)
    gamma = float(np.mean(logs[1:] - logs[0]))
    if gamma <= 0:
        return float("inf")
    return 1.0 / gamma


def tail_heaviness_ratio(sample: Sequence[float], top_fraction: float = 0.1) -> float:
    """Share of the sample's total carried by its largest ``top_fraction``
    of values.

    For exponential data the top 10 % of intervals carry roughly a third
    of the total; heavy-tailed idle-time distributions concentrate far
    more (often > 0.7), which is exactly the "long stretches of idleness"
    observation.
    """
    if not 0.0 < top_fraction < 1.0:
        raise StatsError(f"top_fraction must be in (0, 1), got {top_fraction!r}")
    values = np.asarray(sample, dtype=np.float64)
    values = values[~np.isnan(values)]
    if values.size == 0:
        raise StatsError("cannot compute tail heaviness of an empty sample")
    total = values.sum()
    if total <= 0:
        return float("nan")
    k = max(1, int(round(top_fraction * values.size)))
    top = np.sort(values)[-k:]
    return float(top.sum() / total)
