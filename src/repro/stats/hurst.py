"""Hurst-parameter estimators for long-range dependence.

Self-similar traffic aggregated by a factor ``m`` keeps a variance that
decays like ``m^(2H - 2)`` instead of the ``m^-1`` of independent counts.
``H > 0.5`` therefore quantifies the "bursty across all time scales"
finding. Two classical estimators are provided — the aggregate-variance
method and rescaled-range (R/S) analysis — because agreement between two
independent estimators is the standard evidence the literature expects.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.errors import StatsError
from repro.traces.window import aggregate


def variance_time_curve(
    counts: Sequence[float], factors: Sequence[int], min_bins: int = 8
) -> Tuple[np.ndarray, np.ndarray]:
    """Variance of the *normalized* aggregated series per factor.

    For each ``m`` in ``factors`` the count series is block-summed and
    divided by ``m``; the variance of that series versus ``m`` on a
    log-log plot has slope ``2H - 2``. Factors leaving fewer than
    ``min_bins`` blocks are skipped.

    Returns ``(usable_factors, variances)``.
    """
    base = np.asarray(counts, dtype=np.float64)
    if base.size < min_bins:
        raise StatsError(
            f"count series too short ({base.size} bins) for a variance-time curve"
        )
    used = []
    variances = []
    for factor in factors:
        if factor <= 0:
            raise StatsError(f"factors must be > 0, got {factor!r}")
        series = aggregate(base, int(factor)) / float(factor)
        if series.size < min_bins:
            continue
        used.append(int(factor))
        variances.append(float(series.var(ddof=1)))
    if len(used) < 2:
        raise StatsError("fewer than two usable aggregation factors")
    return np.asarray(used, dtype=np.float64), np.asarray(variances)


def hurst_aggregate_variance(
    counts: Sequence[float], factors: Sequence[int] = (1, 2, 4, 8, 16, 32, 64)
) -> float:
    """Hurst estimate from the slope of the variance-time curve.

    Fits ``log(var)`` against ``log(m)`` by least squares; the estimate is
    ``1 + slope / 2``, clipped to ``[0, 1]``. Degenerate (zero-variance)
    curves yield NaN.
    """
    factors_used, variances = variance_time_curve(counts, factors)
    positive = variances > 0
    if positive.sum() < 2:
        return float("nan")
    slope = np.polyfit(np.log(factors_used[positive]), np.log(variances[positive]), 1)[0]
    return float(np.clip(1.0 + slope / 2.0, 0.0, 1.0))


def _rescaled_range(segment: np.ndarray) -> float:
    centered = segment - segment.mean()
    cumulative = np.cumsum(centered)
    spread = cumulative.max() - cumulative.min()
    scale = segment.std(ddof=0)
    if scale == 0:
        return float("nan")
    return float(spread / scale)


def hurst_rescaled_range(
    counts: Sequence[float], min_chunk: int = 8, n_sizes: int = 8
) -> float:
    """Hurst estimate by classical R/S analysis.

    The series is cut into non-overlapping chunks at ``n_sizes``
    geometrically spaced chunk lengths between ``min_chunk`` and half the
    series; mean R/S per length is regressed on length in log-log space
    and the slope is the estimate, clipped to ``[0, 1]``.
    """
    values = np.asarray(counts, dtype=np.float64)
    if values.size < 2 * min_chunk:
        raise StatsError(
            f"count series too short ({values.size} bins) for R/S analysis"
        )
    max_chunk = values.size // 2
    sizes = np.unique(
        np.geomspace(min_chunk, max_chunk, n_sizes).astype(int)
    )
    log_sizes = []
    log_rs = []
    for size in sizes:
        chunks = values[: (values.size // size) * size].reshape(-1, size)
        rs = [_rescaled_range(chunk) for chunk in chunks]
        rs = [v for v in rs if np.isfinite(v) and v > 0]
        if not rs:
            continue
        log_sizes.append(np.log(size))
        log_rs.append(np.log(np.mean(rs)))
    if len(log_sizes) < 2:
        return float("nan")
    slope = np.polyfit(log_sizes, log_rs, 1)[0]
    return float(np.clip(slope, 0.0, 1.0))
