"""Periodicity detection for counter series.

Hour traces carry daily and weekly cycles; rather than assuming them,
the analysis can *detect* them. Two detectors are provided: a
periodogram peak (FFT) and a seasonal-strength measure that quantifies
how much variance a candidate period explains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import StatsError


@dataclass(frozen=True)
class PeriodEstimate:
    """A detected period in a uniformly sampled series.

    Attributes
    ----------
    period:
        The detected period in samples.
    power_fraction:
        The periodogram mass at the detected frequency, as a fraction of
        total (non-DC) mass — a crude confidence measure.
    """

    period: float
    power_fraction: float


def dominant_period(
    series: Sequence[float], min_period: int = 2, max_period: Optional[int] = None
) -> PeriodEstimate:
    """The strongest periodic component of a series, via the periodogram.

    The mean is removed; the frequency with maximal power whose period
    lies in ``[min_period, max_period]`` wins. ``max_period`` defaults
    to half the series length.

    Raises :class:`StatsError` for series too short to host a period or
    with zero variance.
    """
    values = np.asarray(series, dtype=np.float64)
    values = values[~np.isnan(values)]
    n = values.size
    if max_period is None:
        max_period = n // 2
    if min_period < 2:
        raise StatsError(f"min_period must be >= 2, got {min_period!r}")
    if max_period < min_period or n < 2 * min_period:
        raise StatsError(
            f"series of {n} samples cannot host periods in "
            f"[{min_period}, {max_period}]"
        )
    centered = values - values.mean()
    if np.allclose(centered, 0.0):
        raise StatsError("series has zero variance; no period to detect")
    spectrum = np.abs(np.fft.rfft(centered)) ** 2
    frequencies = np.fft.rfftfreq(n)  # cycles per sample
    with np.errstate(divide="ignore"):
        periods = np.where(frequencies > 0, 1.0 / frequencies, np.inf)
    eligible = (periods >= min_period) & (periods <= max_period)
    if not np.any(eligible):
        raise StatsError("no FFT bin falls in the requested period range")
    masked = np.where(eligible, spectrum, 0.0)
    best = int(np.argmax(masked))
    total = spectrum[1:].sum()
    return PeriodEstimate(
        period=float(periods[best]),
        power_fraction=float(spectrum[best] / total) if total > 0 else 0.0,
    )


def remove_seasonal(series: Sequence[float], period: int) -> np.ndarray:
    """Subtract the per-phase mean cycle, leaving the residual series.

    The residual keeps the series' overall mean (the cycle is removed
    around it), so rate-based statistics (IDC) remain meaningful. Used
    to ask what burstiness remains once the diurnal cycle is explained
    away — if the residual is still overdispersed, the burstiness is
    intrinsic, not an artifact of the daily rhythm.
    """
    values = np.asarray(series, dtype=np.float64)
    if np.any(np.isnan(values)):
        raise StatsError("remove_seasonal requires a NaN-free series")
    if period < 2:
        raise StatsError(f"period must be >= 2, got {period!r}")
    if values.size < 2 * period:
        raise StatsError(
            f"need at least two full periods ({2 * period} samples), "
            f"got {values.size}"
        )
    phases = np.arange(values.size) % period
    phase_means = np.array(
        [values[phases == p].mean() for p in range(period)]
    )
    return values - phase_means[phases] + values.mean()


def seasonal_strength(series: Sequence[float], period: int) -> float:
    """How much of the series' variance a fixed ``period`` explains.

    The series is folded at the period; the variance of the per-phase
    means divided by the total variance is the strength, in [0, 1].
    0 means the candidate period explains nothing, values near 1 mean
    the series is almost a pure cycle.
    """
    values = np.asarray(series, dtype=np.float64)
    values = values[~np.isnan(values)]
    if period < 2:
        raise StatsError(f"period must be >= 2, got {period!r}")
    if values.size < 2 * period:
        raise StatsError(
            f"need at least two full periods ({2 * period} samples), "
            f"got {values.size}"
        )
    total_var = values.var()
    if total_var == 0:
        return 0.0
    usable = values[: (values.size // period) * period].reshape(-1, period)
    phase_means = usable.mean(axis=0)
    return float(min(1.0, phase_means.var() / total_var))
