"""Index of dispersion for counts (IDC) across aggregation scales.

The IDC at scale ``t`` is ``Var(N_t) / E(N_t)`` where ``N_t`` is the
number of arrivals in an interval of length ``t``. For a Poisson process
the IDC is 1 at every scale; for traffic that is bursty *across* time
scales — the paper's central claim about disk-level workloads — the IDC
grows with the scale. :func:`idc_curve` is therefore the library's
primary burstiness-versus-time-scale measurement.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.errors import StatsError
from repro.traces.window import aggregate, bin_counts


def index_of_dispersion(counts: Sequence[float]) -> float:
    """``Var / Mean`` of a count series (NaN for zero-mean series)."""
    values = np.asarray(counts, dtype=np.float64)
    if values.size < 2:
        raise StatsError("index of dispersion needs at least 2 count bins")
    mean = values.mean()
    if mean == 0:
        return float("nan")
    return float(values.var(ddof=1) / mean)


def idc_curve(
    times: np.ndarray,
    span: float,
    base_scale: float,
    factors: Sequence[int],
    min_bins: int = 8,
) -> Tuple[np.ndarray, np.ndarray]:
    """IDC of an arrival process at ``base_scale * factor`` for each factor.

    Counts are formed once at ``base_scale`` and re-aggregated by block
    sums, so every scale sees exactly the same events. Scales that would
    leave fewer than ``min_bins`` bins are dropped (their variance
    estimate would be meaningless).

    Returns ``(scales_seconds, idc_values)``, both 1-D and equally long.
    """
    if base_scale <= 0:
        raise StatsError(f"base_scale must be > 0, got {base_scale!r}")
    if not factors:
        raise StatsError("need at least one aggregation factor")
    base = bin_counts(np.asarray(times, dtype=np.float64), base_scale, span)
    scales = []
    values = []
    for factor in factors:
        if factor <= 0:
            raise StatsError(f"aggregation factors must be > 0, got {factor!r}")
        series = aggregate(base, int(factor))
        if series.size < min_bins:
            continue
        scales.append(base_scale * factor)
        values.append(index_of_dispersion(series))
    if not scales:
        raise StatsError(
            "no usable scales: trace too short for the requested factors"
        )
    return np.asarray(scales), np.asarray(values)
