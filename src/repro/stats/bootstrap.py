"""Bootstrap confidence intervals for workload statistics.

Point estimates of heavy-tailed quantities (Hurst, Gini, tail shares)
deserve error bars. Two resamplers are provided: the classic i.i.d.
bootstrap for cross-sectional samples (per-drive statistics), and the
moving-block bootstrap for time series (count sequences), which
preserves short-range dependence the i.i.d. scheme would destroy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.errors import StatsError


@dataclass(frozen=True)
class BootstrapInterval:
    """A percentile bootstrap confidence interval.

    Attributes
    ----------
    estimate:
        The statistic evaluated on the original sample.
    low, high:
        The interval endpoints.
    confidence:
        Nominal coverage (e.g. 0.95).
    replicates:
        Number of bootstrap replicates used.
    """

    estimate: float
    low: float
    high: float
    confidence: float
    replicates: int

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.low <= value <= self.high

    @property
    def width(self) -> float:
        """Interval width."""
        return self.high - self.low


def _interval(
    estimate: float,
    replicate_values: np.ndarray,
    confidence: float,
) -> BootstrapInterval:
    finite = replicate_values[np.isfinite(replicate_values)]
    if finite.size == 0:
        raise StatsError("every bootstrap replicate produced a non-finite value")
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(finite, [alpha, 1.0 - alpha])
    return BootstrapInterval(
        estimate=float(estimate),
        low=float(low),
        high=float(high),
        confidence=float(confidence),
        replicates=int(finite.size),
    )


def bootstrap_ci(
    sample: Sequence[float],
    statistic: Callable[[np.ndarray], float],
    replicates: int = 500,
    confidence: float = 0.95,
    seed: int = 0,
) -> BootstrapInterval:
    """Percentile bootstrap CI for ``statistic`` on an i.i.d. sample."""
    values = np.asarray(sample, dtype=np.float64)
    values = values[~np.isnan(values)]
    if values.size < 2:
        raise StatsError("bootstrap needs at least 2 observations")
    if replicates < 10:
        raise StatsError(f"replicates must be >= 10, got {replicates!r}")
    if not 0.5 < confidence < 1.0:
        raise StatsError(f"confidence must be in (0.5, 1), got {confidence!r}")
    rng = np.random.default_rng(seed)
    estimate = float(statistic(values))
    outcomes = np.empty(replicates)
    for i in range(replicates):
        resample = values[rng.integers(0, values.size, size=values.size)]
        try:
            outcomes[i] = float(statistic(resample))
        except Exception:
            outcomes[i] = np.nan
    return _interval(estimate, outcomes, confidence)


def block_bootstrap_ci(
    series: Sequence[float],
    statistic: Callable[[np.ndarray], float],
    block_length: int,
    replicates: int = 200,
    confidence: float = 0.95,
    seed: int = 0,
) -> BootstrapInterval:
    """Moving-block bootstrap CI for a statistic of a dependent series.

    Resamples overlapping blocks of ``block_length`` consecutive values
    and concatenates them to the original length, preserving dependence
    up to the block scale. Choose a block several times the series'
    correlation time.
    """
    values = np.asarray(series, dtype=np.float64)
    if np.any(np.isnan(values)):
        raise StatsError("block bootstrap requires a NaN-free series")
    n = values.size
    if block_length < 1:
        raise StatsError(f"block_length must be >= 1, got {block_length!r}")
    if n < 2 * block_length:
        raise StatsError(
            f"series of {n} too short for blocks of {block_length}"
        )
    if replicates < 10:
        raise StatsError(f"replicates must be >= 10, got {replicates!r}")
    if not 0.5 < confidence < 1.0:
        raise StatsError(f"confidence must be in (0.5, 1), got {confidence!r}")
    rng = np.random.default_rng(seed)
    estimate = float(statistic(values))
    n_blocks = int(np.ceil(n / block_length))
    max_start = n - block_length
    outcomes = np.empty(replicates)
    for i in range(replicates):
        starts = rng.integers(0, max_start + 1, size=n_blocks)
        pieces = [values[s:s + block_length] for s in starts]
        resample = np.concatenate(pieces)[:n]
        try:
            outcomes[i] = float(statistic(resample))
        except Exception:
            outcomes[i] = np.nan
    return _interval(estimate, outcomes, confidence)
