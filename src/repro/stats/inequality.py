"""Inequality measures for cross-drive variability.

"There is variability across drives of the same family" becomes
quantitative through the Lorenz curve of per-drive lifetime traffic and
its Gini coefficient: a Gini near 0 would mean every drive carries the
same load, values above ~0.5 mean a minority of drives carries the bulk
of the family's traffic.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.errors import StatsError


def _clean_nonnegative(sample: Sequence[float]) -> np.ndarray:
    values = np.asarray(sample, dtype=np.float64)
    values = values[~np.isnan(values)]
    if values.size == 0:
        raise StatsError("cannot compute inequality of an empty sample")
    if np.any(values < 0):
        raise StatsError("inequality measures require non-negative values")
    return values


def lorenz_curve(sample: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """The Lorenz curve of a non-negative sample.

    Returns ``(population_share, value_share)``, each of length
    ``n + 1`` starting at (0, 0) and ending at (1, 1): after sorting
    ascending, ``value_share[k]`` is the fraction of the total carried by
    the ``k`` least-loaded drives.
    """
    values = np.sort(_clean_nonnegative(sample))
    total = values.sum()
    if total == 0:
        raise StatsError("Lorenz curve is undefined for an all-zero sample")
    cum = np.concatenate([[0.0], np.cumsum(values)]) / total
    pop = np.arange(values.size + 1) / values.size
    return pop, cum


def gini_coefficient(sample: Sequence[float]) -> float:
    """Gini coefficient in [0, 1) computed from the Lorenz curve by the
    trapezoid rule. 0 means perfect equality."""
    pop, cum = lorenz_curve(sample)
    trapezoid = getattr(np, "trapezoid", None) or np.trapz  # numpy 2 rename
    area_under = float(trapezoid(cum, pop))
    return 1.0 - 2.0 * area_under


def top_share(sample: Sequence[float], top_fraction: float = 0.1) -> float:
    """Fraction of the total carried by the top ``top_fraction`` of the
    population — e.g. "the busiest 10 % of drives move X % of the bytes"."""
    if not 0.0 < top_fraction < 1.0:
        raise StatsError(f"top_fraction must be in (0, 1), got {top_fraction!r}")
    values = _clean_nonnegative(sample)
    total = values.sum()
    if total == 0:
        return float("nan")
    k = max(1, int(round(top_fraction * values.size)))
    return float(np.sort(values)[-k:].sum() / total)
