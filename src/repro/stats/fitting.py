"""Maximum-likelihood fits of the distributions the storage literature
fits to idle times, interarrivals and sizes: exponential, lognormal and
Pareto.

Each fit object reports its parameters, log-likelihood, and a
Kolmogorov-Smirnov distance against the data, so :func:`best_fit` can
pick the best-explaining family — the standard workflow when deciding
whether an idle-time distribution is exponential (memoryless) or
heavy-tailed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import StatsError


def _clean_positive(sample: Sequence[float], what: str) -> np.ndarray:
    values = np.asarray(sample, dtype=np.float64)
    values = values[~np.isnan(values)]
    if values.size < 2:
        raise StatsError(f"{what} needs at least 2 observations")
    if np.any(values <= 0):
        raise StatsError(f"{what} requires strictly positive observations")
    return values


def _ks_distance(sorted_values: np.ndarray, cdf_values: np.ndarray) -> float:
    n = sorted_values.size
    upper = np.arange(1, n + 1) / n
    lower = np.arange(0, n) / n
    return float(max(np.max(np.abs(upper - cdf_values)), np.max(np.abs(lower - cdf_values))))


@dataclass(frozen=True)
class ExponentialFit:
    """MLE exponential fit: rate ``lam`` (1/mean)."""

    lam: float
    log_likelihood: float
    ks_distance: float

    name: str = "exponential"

    def cdf(self, x: np.ndarray) -> np.ndarray:
        """CDF of the fitted exponential at ``x``."""
        return 1.0 - np.exp(-self.lam * np.asarray(x, dtype=np.float64))

    @property
    def mean(self) -> float:
        """Fitted mean ``1 / lam``."""
        return 1.0 / self.lam


@dataclass(frozen=True)
class LognormalFit:
    """MLE lognormal fit: ``mu`` and ``sigma`` of log-values."""

    mu: float
    sigma: float
    log_likelihood: float
    ks_distance: float

    name: str = "lognormal"

    def cdf(self, x: np.ndarray) -> np.ndarray:
        """CDF of the fitted lognormal at ``x`` (0 for x <= 0)."""
        x = np.asarray(x, dtype=np.float64)
        out = np.zeros_like(x)
        positive = x > 0
        z = (np.log(x[positive]) - self.mu) / (self.sigma * np.sqrt(2.0))
        out[positive] = 0.5 * (1.0 + _erf(z))
        return out

    @property
    def mean(self) -> float:
        """Fitted mean ``exp(mu + sigma^2 / 2)``."""
        return float(np.exp(self.mu + self.sigma ** 2 / 2.0))


@dataclass(frozen=True)
class ParetoFit:
    """MLE (conditional on the minimum) Pareto fit: scale ``xm`` and
    shape ``alpha``."""

    xm: float
    alpha: float
    log_likelihood: float
    ks_distance: float

    name: str = "pareto"

    def cdf(self, x: np.ndarray) -> np.ndarray:
        """CDF of the fitted Pareto at ``x`` (0 below ``xm``)."""
        x = np.asarray(x, dtype=np.float64)
        out = np.zeros_like(x)
        above = x >= self.xm
        out[above] = 1.0 - (self.xm / x[above]) ** self.alpha
        return out

    @property
    def mean(self) -> float:
        """Fitted mean (inf for ``alpha <= 1``)."""
        if self.alpha <= 1:
            return float("inf")
        return self.alpha * self.xm / (self.alpha - 1.0)


def _erf(z: np.ndarray) -> np.ndarray:
    # Abramowitz & Stegun 7.1.26 rational approximation; |error| < 1.5e-7,
    # ample for KS distances on empirical data.
    sign = np.sign(z)
    z = np.abs(z)
    t = 1.0 / (1.0 + 0.3275911 * z)
    poly = t * (
        0.254829592
        + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429)))
    )
    return sign * (1.0 - poly * np.exp(-z * z))


def fit_exponential(sample: Sequence[float]) -> ExponentialFit:
    """Fit an exponential distribution by maximum likelihood."""
    values = _clean_positive(sample, "exponential fit")
    lam = 1.0 / values.mean()
    ll = values.size * np.log(lam) - lam * values.sum()
    ordered = np.sort(values)
    fit = ExponentialFit(lam=float(lam), log_likelihood=float(ll), ks_distance=0.0)
    ks = _ks_distance(ordered, fit.cdf(ordered))
    return ExponentialFit(lam=float(lam), log_likelihood=float(ll), ks_distance=ks)


def fit_lognormal(sample: Sequence[float]) -> LognormalFit:
    """Fit a lognormal distribution by maximum likelihood."""
    values = _clean_positive(sample, "lognormal fit")
    logs = np.log(values)
    mu = float(logs.mean())
    sigma = float(logs.std(ddof=0))
    if sigma == 0:
        raise StatsError("lognormal fit is degenerate: all values identical")
    ll = float(
        -values.size * np.log(sigma * np.sqrt(2 * np.pi))
        - logs.sum()
        - np.sum((logs - mu) ** 2) / (2 * sigma ** 2)
    )
    ordered = np.sort(values)
    fit = LognormalFit(mu=mu, sigma=sigma, log_likelihood=ll, ks_distance=0.0)
    ks = _ks_distance(ordered, fit.cdf(ordered))
    return LognormalFit(mu=mu, sigma=sigma, log_likelihood=ll, ks_distance=ks)


def fit_pareto(sample: Sequence[float]) -> ParetoFit:
    """Fit a Pareto distribution by maximum likelihood (``xm`` set to the
    sample minimum, the MLE)."""
    values = _clean_positive(sample, "Pareto fit")
    xm = float(values.min())
    log_ratios = np.log(values / xm)
    total = log_ratios.sum()
    if total <= 0:
        raise StatsError("Pareto fit is degenerate: all values identical")
    alpha = values.size / total
    ll = float(
        values.size * np.log(alpha)
        + values.size * alpha * np.log(xm)
        - (alpha + 1) * np.log(values).sum()
    )
    ordered = np.sort(values)
    fit = ParetoFit(xm=xm, alpha=float(alpha), log_likelihood=ll, ks_distance=0.0)
    ks = _ks_distance(ordered, fit.cdf(ordered))
    return ParetoFit(xm=xm, alpha=float(alpha), log_likelihood=ll, ks_distance=ks)


def best_fit(sample: Sequence[float]):
    """Fit all three families and return the one with the smallest
    Kolmogorov-Smirnov distance. Degenerate families are skipped."""
    fits = []
    for fitter in (fit_exponential, fit_lognormal, fit_pareto):
        try:
            fits.append(fitter(sample))
        except StatsError:
            continue
    if not fits:
        raise StatsError("no distribution family could be fitted")
    return min(fits, key=lambda f: f.ks_distance)
