"""Autocorrelation of count series.

Slowly decaying autocorrelation of per-interval arrival counts is one of
the paper's signatures of burstiness persisting across time scales; a
Poisson stream decorrelates immediately, real disk traffic does not.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import StatsError


def autocorrelation(series: Sequence[float], max_lag: int) -> np.ndarray:
    """Sample autocorrelation function at lags ``0 .. max_lag``.

    Uses the standard biased estimator (normalizing by ``n`` at every
    lag), which guarantees the result is a valid correlation sequence.
    A constant series has undefined correlation; NaN is returned at all
    positive lags in that case, with 1.0 at lag 0 by convention.
    """
    values = np.asarray(series, dtype=np.float64)
    n = values.size
    if n < 2:
        raise StatsError("autocorrelation needs at least 2 observations")
    if max_lag < 0:
        raise StatsError(f"max_lag must be >= 0, got {max_lag!r}")
    max_lag = min(max_lag, n - 1)
    centered = values - values.mean()
    denominator = float(np.dot(centered, centered))
    acf = np.empty(max_lag + 1)
    acf[0] = 1.0
    if denominator == 0:
        acf[1:] = np.nan
        return acf
    for lag in range(1, max_lag + 1):
        acf[lag] = float(np.dot(centered[:-lag], centered[lag:])) / denominator
    return acf


def integrated_autocorrelation_time(
    series: Sequence[float], max_lag: int = 200
) -> float:
    """The integrated autocorrelation time ``1 + 2 * sum(acf[1..])``.

    Summation stops at the first non-positive ACF value (the usual
    initial-positive-sequence truncation) to avoid accumulating noise.
    Values near 1 indicate an uncorrelated (Poisson-like) stream; large
    values indicate long-memory traffic.
    """
    acf = autocorrelation(series, max_lag)
    total = 1.0
    for lag in range(1, acf.size):
        rho = acf[lag]
        if not np.isfinite(rho) or rho <= 0:
            break
        total += 2.0 * rho
    return total
